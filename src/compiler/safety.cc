#include "safety.hh"

#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "compiler/points_to.hh"

namespace hintm
{
namespace compiler
{

using tir::Instr;
using tir::Module;
using tir::Opcode;

namespace
{

/** Identifies an instruction position. */
struct InstrRef
{
    int fn, block, instr;
    bool operator<(const InstrRef &o) const
    {
        if (fn != o.fn)
            return fn < o.fn;
        if (block != o.block)
            return block < o.block;
        return instr < o.instr;
    }
};

/** Which analysis classified an object (SafetyReport attribution). */
enum class Prov : std::uint8_t
{
    None,
    Stack,
    Heap,
    ReadOnly,
};

/** Object safety classification for one analysis round. */
struct ObjectClasses
{
    std::vector<bool> loadSafe;   ///< loads of the object are safe
    std::vector<bool> storable;   ///< candidate for safe (init) stores
    /** Justifying analysis per object (None when not loadSafe). */
    std::vector<Prov> provenance;
    unsigned stackObjects = 0;
    unsigned heapObjects = 0;
    unsigned readOnlyObjects = 0;
};

/** Per-block TX entry state (0 = out, 1 = in), as in the verifier. */
std::vector<int>
txEntryStates(const tir::Function &fn)
{
    std::vector<int> state(fn.blocks.size(), -1);
    if (fn.blocks.empty())
        return state;
    std::vector<int> work{0};
    state[0] = 0;
    while (!work.empty()) {
        const int b = work.back();
        work.pop_back();
        int tx = state[b];
        for (const Instr &ins : fn.blocks[b].instrs) {
            if (ins.op == Opcode::TxBegin)
                tx = 1;
            else if (ins.op == Opcode::TxEnd)
                tx = 0;
            else if (ins.op == Opcode::Br || ins.op == Opcode::CondBr) {
                auto push = [&](std::int64_t t) {
                    if (state[std::size_t(t)] == -1) {
                        state[std::size_t(t)] = tx;
                        work.push_back(int(t));
                    }
                };
                push(ins.imm);
                if (ins.op == Opcode::CondBr)
                    push(ins.imm2);
            }
        }
    }
    return state;
}

/**
 * Flattened, approximate execution-order listing of the instructions a
 * TX region may execute: the region function's transactional span in
 * block-index order, with callee bodies spliced in at call sites
 * (depth-first, each callee listed once — first call order wins, which
 * is exactly the order the initializing-store heuristic needs).
 */
class RegionListing
{
  public:
    RegionListing(const Module &mod, int region_fn) : mod_(mod)
    {
        const auto &fn = mod.functions[std::size_t(region_fn)];
        const std::vector<int> entry = txEntryStates(fn);
        for (int b = 0; b < int(fn.blocks.size()); ++b) {
            if (entry[b] == -1)
                continue; // unreachable
            int tx = entry[b];
            const auto &instrs = fn.blocks[b].instrs;
            for (int i = 0; i < int(instrs.size()); ++i) {
                const Instr &ins = instrs[i];
                if (ins.op == Opcode::TxBegin) {
                    tx = 1;
                    continue;
                }
                if (ins.op == Opcode::TxEnd) {
                    tx = 0;
                    continue;
                }
                if (!tx)
                    continue;
                addInstr(region_fn, b, i, ins);
            }
        }
    }

    const std::vector<InstrRef> &refs() const { return refs_; }
    const std::vector<const Instr *> &instrs() const { return instrs_; }

  private:
    void
    addInstr(int f, int b, int i, const Instr &ins)
    {
        refs_.push_back(InstrRef{f, b, i});
        instrs_.push_back(&ins);
        if (ins.op == Opcode::Call)
            spliceFunction(int(ins.imm));
    }

    void
    spliceFunction(int f)
    {
        if (!visited_.insert(f).second)
            return;
        const auto &fn = mod_.functions[std::size_t(f)];
        for (int b = 0; b < int(fn.blocks.size()); ++b) {
            const auto &instrs = fn.blocks[b].instrs;
            for (int i = 0; i < int(instrs.size()); ++i)
                addInstr(f, b, i, instrs[i]);
        }
    }

    const Module &mod_;
    std::vector<InstrRef> refs_;
    std::vector<const Instr *> instrs_;
    std::unordered_set<int> visited_;
};

ObjectClasses
classifyObjects(const Module &mod, const PointsTo &pt,
                const SafetyOptions &opts)
{
    ObjectClasses oc;
    const auto &objects = pt.objects();
    oc.loadSafe.assign(objects.size(), false);
    oc.storable.assign(objects.size(), false);
    oc.provenance.assign(objects.size(), Prov::None);

    const std::set<int> parallel = pt.reachableFrom(mod.threadFunc);
    std::set<int> init;
    if (mod.initFunc >= 0)
        init = pt.reachableFrom(mod.initFunc);

    // Which objects are stored to anywhere in the parallel region, and
    // which have a Free reaching them there (Algorithm 1 criterion ii).
    std::vector<bool> storedInParallel(objects.size(), false);
    std::vector<bool> freedInParallel(objects.size(), false);
    for (int f : parallel) {
        const auto &fn = mod.functions[std::size_t(f)];
        for (const auto &bb : fn.blocks) {
            for (const Instr &ins : bb.instrs) {
                if (ins.op == Opcode::Store) {
                    for (int o : pt.regPts(f, ins.a))
                        storedInParallel[std::size_t(o)] = true;
                } else if (ins.op == Opcode::Free) {
                    for (int o : pt.regPts(f, ins.a))
                        freedInParallel[std::size_t(o)] = true;
                }
            }
        }
    }

    for (int o = 0; o < int(objects.size()); ++o) {
        const AbstractObject &obj = objects[std::size_t(o)];
        switch (obj.kind) {
          case ObjKind::Alloca:
            // Capture tracking: a non-escaping stack object is
            // thread-private by construction.
            if (opts.stackAnalysis && !pt.isEscaped(o)) {
                oc.loadSafe[std::size_t(o)] = true;
                oc.storable[std::size_t(o)] = true;
                oc.provenance[std::size_t(o)] = Prov::Stack;
                ++oc.stackObjects;
            }
            break;
          case ObjKind::Malloc: {
            // Algorithm 1: thread-private heap data structures.
            const bool in_parallel = parallel.count(obj.fn) != 0;
            const bool in_init = init.count(obj.fn) != 0;
            if (opts.heapAnalysis && in_parallel && !in_init &&
                !pt.isEscaped(o) &&
                (!opts.requireFreeForHeapPrivate ||
                 freedInParallel[std::size_t(o)])) {
                oc.loadSafe[std::size_t(o)] = true;
                oc.storable[std::size_t(o)] = true;
                oc.provenance[std::size_t(o)] = Prov::Heap;
                ++oc.heapObjects;
            }
            break;
          }
          case ObjKind::Global:
            break;
        }
        // Read-only shared data: nothing in the parallel region can
        // write this object, so transactional loads cannot race.
        if (opts.readOnlyAnalysis && !oc.loadSafe[std::size_t(o)] &&
            !storedInParallel[std::size_t(o)]) {
            oc.loadSafe[std::size_t(o)] = true;
            oc.provenance[std::size_t(o)] = Prov::ReadOnly;
            ++oc.readOnlyObjects;
        }
    }
    return oc;
}

bool
allLoadSafe(const ObjSet &objs, const ObjectClasses &oc)
{
    if (objs.empty())
        return false;
    for (int o : objs) {
        if (!oc.loadSafe[std::size_t(o)])
            return false;
    }
    return true;
}

/** Common justifying analysis of a points-to set (None = mixed). */
Prov
mergedProv(const ObjSet &objs, const ObjectClasses &oc)
{
    Prov p = Prov::None;
    for (int o : objs) {
        const Prov q = oc.provenance[std::size_t(o)];
        if (p == Prov::None)
            p = q;
        else if (q != p)
            return Prov::None;
    }
    return p;
}

/**
 * One round of function replication: clone callees that receive
 * all-safe pointer arguments from a call site but see mixed (unsafe)
 * arguments when all call sites are merged.
 * @return number of clones created.
 */
unsigned
replicateRound(Module &mod, const PointsTo &pt, const ObjectClasses &oc)
{
    struct Clone
    {
        int callee;
        std::uint64_t profile;
        int cloneIdx;
    };
    std::vector<Clone> clones;
    unsigned created = 0;

    const int num_fns = int(mod.functions.size());
    for (int f = 0; f < num_fns; ++f) {
        auto &fn = mod.functions[std::size_t(f)];
        for (auto &bb : fn.blocks) {
            for (Instr &ins : bb.instrs) {
                if (ins.op != Opcode::Call)
                    continue;
                const int callee = int(ins.imm);
                if (callee == mod.threadFunc || callee == mod.initFunc)
                    continue;
                const auto &cfn = mod.functions[std::size_t(callee)];
                // Compute the call-site safety profile and whether the
                // callee's merged view is less precise.
                std::uint64_t profile = 0;
                bool worth = false;
                for (unsigned p = 0;
                     p < cfn.numParams && p < 64; ++p) {
                    const ObjSet &arg = pt.regPts(f, ins.args[p]);
                    if (arg.empty())
                        continue;
                    if (!allLoadSafe(arg, oc))
                        continue;
                    profile |= std::uint64_t(1) << p;
                    if (!allLoadSafe(pt.regPts(callee, int(p)), oc))
                        worth = true;
                }
                if (!worth)
                    continue;

                // Reuse an existing clone with the same profile.
                int target = -1;
                for (const Clone &c : clones) {
                    if (c.callee == callee && c.profile == profile)
                        target = c.cloneIdx;
                }
                if (target < 0) {
                    tir::Function copy = cfn;
                    std::ostringstream name;
                    name << cfn.name << "$safe" << std::hex << profile
                         << "_" << mod.functions.size();
                    copy.name = name.str();
                    mod.functions.push_back(std::move(copy));
                    target = int(mod.functions.size()) - 1;
                    clones.push_back(Clone{callee, profile, target});
                    ++created;
                }
                ins.imm = target;
            }
        }
    }
    return created;
}

} // namespace

std::string
SafetyReport::summary() const
{
    std::ostringstream os;
    os << "safe loads " << safeLoads << "/" << totalLoads
       << ", safe stores " << safeStores << "/" << totalStores
       << " (stack objs " << safeStackObjects << ", heap objs "
       << safeHeapObjects << ", ro objs " << readOnlyObjects
       << ", clones " << replicatedFunctions << ")"
       << " [loads stack " << safeLoadsStack << " heap " << safeLoadsHeap
       << " ro " << safeLoadsReadOnly << " mixed " << safeLoadsMixed
       << "; stores stack " << safeStoresStack << " heap "
       << safeStoresHeap << " mixed " << safeStoresMixed << "]";
    return os.str();
}

SafetyReport
annotateSafety(Module &mod, const SafetyOptions &opts)
{
    HINTM_ASSERT(mod.threadFunc >= 0, "module lacks a thread function");
    SafetyReport rep;

    // Idempotence: clear all hints.
    for (auto &fn : mod.functions) {
        for (auto &bb : fn.blocks) {
            for (auto &ins : bb.instrs)
                ins.safe = false;
        }
    }

    // Replication rounds (each changes the call graph, so re-analyze).
    if (opts.functionReplication) {
        for (unsigned round = 0; round < opts.replicationRounds; ++round) {
            PointsTo pt(mod);
            const ObjectClasses oc = classifyObjects(mod, pt, opts);
            const unsigned created = replicateRound(mod, pt, oc);
            rep.replicatedFunctions += created;
            if (created == 0)
                break;
        }
    }

    PointsTo pt(mod);
    const ObjectClasses oc = classifyObjects(mod, pt, opts);
    rep.safeStackObjects = oc.stackObjects;
    rep.safeHeapObjects = oc.heapObjects;
    rep.readOnlyObjects = oc.readOnlyObjects;

    // Initializing-store analysis per TX region. safeVotes counts the
    // regions in which a store qualifies; a store is marked only when it
    // qualifies in every region that can execute it.
    std::map<InstrRef, unsigned> containCount;
    std::map<InstrRef, unsigned> safeVotes;
    for (int f = 0; f < int(mod.functions.size()); ++f) {
        bool has_tx = false;
        for (const auto &bb : mod.functions[std::size_t(f)].blocks) {
            for (const auto &ins : bb.instrs)
                has_tx |= ins.op == Opcode::TxBegin;
        }
        if (!has_tx)
            continue;

        RegionListing region(mod, f);
        // First access per object, in listing order (emplace keeps the
        // earliest access's kind).
        std::unordered_map<int, bool> firstIsStore;
        for (std::size_t k = 0; k < region.instrs().size(); ++k) {
            const Instr &ins = *region.instrs()[k];
            if (!tir::isMemAccess(ins.op))
                continue;
            const InstrRef ref = region.refs()[k];
            for (int o : pt.regPts(ref.fn, ins.a)) {
                firstIsStore.emplace(o, ins.op == Opcode::Store);
            }
        }
        for (std::size_t k = 0; k < region.instrs().size(); ++k) {
            const Instr &ins = *region.instrs()[k];
            if (ins.op != Opcode::Store)
                continue;
            const InstrRef ref = region.refs()[k];
            ++containCount[ref];
            const ObjSet &objs = pt.regPts(ref.fn, ins.a);
            bool ok = !objs.empty();
            for (int o : objs) {
                if (!oc.storable[std::size_t(o)] ||
                    !firstIsStore[o]) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                ++safeVotes[ref];
        }
    }

    // Final marking.
    for (int f = 0; f < int(mod.functions.size()); ++f) {
        auto &fn = mod.functions[std::size_t(f)];
        for (int b = 0; b < int(fn.blocks.size()); ++b) {
            auto &instrs = fn.blocks[b].instrs;
            for (int i = 0; i < int(instrs.size()); ++i) {
                Instr &ins = instrs[i];
                if (ins.op == Opcode::Load) {
                    ++rep.totalLoads;
                    if (allLoadSafe(pt.regPts(f, ins.a), oc)) {
                        ins.safe = true;
                        ++rep.safeLoads;
                        switch (mergedProv(pt.regPts(f, ins.a), oc)) {
                        case Prov::Stack:
                            ++rep.safeLoadsStack;
                            break;
                        case Prov::Heap:
                            ++rep.safeLoadsHeap;
                            break;
                        case Prov::ReadOnly:
                            ++rep.safeLoadsReadOnly;
                            break;
                        case Prov::None:
                            ++rep.safeLoadsMixed;
                            break;
                        }
                    }
                } else if (ins.op == Opcode::Store) {
                    ++rep.totalStores;
                    const InstrRef ref{f, b, i};
                    auto cc = containCount.find(ref);
                    if (cc != containCount.end() && cc->second > 0 &&
                        safeVotes[ref] == cc->second) {
                        ins.safe = true;
                        ++rep.safeStores;
                        switch (mergedProv(pt.regPts(f, ins.a), oc)) {
                        case Prov::Stack:
                            ++rep.safeStoresStack;
                            break;
                        case Prov::Heap:
                            ++rep.safeStoresHeap;
                            break;
                        default:
                            ++rep.safeStoresMixed;
                            break;
                        }
                    }
                }
            }
        }
    }
    return rep;
}

} // namespace compiler
} // namespace hintm
