/**
 * @file
 * Flow- and context-insensitive Andersen-style pointer analysis over
 * TxIR, the foundation of HinTM's static safety classification (§IV-A).
 * Abstract objects are allocation sites (alloca/malloc) and globals; the
 * analysis computes, per function, which objects each register may point
 * to, plus a field-insensitive heap graph (object -> objects its cells
 * may hold). Escape information (reachability from globals) and the call
 * graph fall out of the same fixpoint.
 */

#ifndef HINTM_COMPILER_POINTS_TO_HH
#define HINTM_COMPILER_POINTS_TO_HH

#include <set>
#include <vector>

#include "tir/ir.hh"

namespace hintm
{
namespace compiler
{

/** Kinds of abstract memory objects. */
enum class ObjKind : std::uint8_t
{
    Global,
    Alloca,
    Malloc,
};

/** An allocation site / global variable. */
struct AbstractObject
{
    ObjKind kind;
    /** Defining function (sites) or -1 (globals). */
    int fn = -1;
    int block = -1;
    int instr = -1;
    /** Global index for ObjKind::Global. */
    int globalId = -1;
};

using ObjSet = std::set<int>;

/** The analysis result. */
class PointsTo
{
  public:
    /** Run the fixpoint over @p mod. The module must verify. */
    explicit PointsTo(const tir::Module &mod);

    const std::vector<AbstractObject> &objects() const { return objects_; }

    /** Object id defined by an Alloca/Malloc instruction, or -1. */
    int siteOf(int fn, int block, int instr) const;

    /** Object id of a global. */
    int globalObject(int global_id) const;

    /** May-point-to set of register @p r in function @p fn. */
    const ObjSet &regPts(int fn, int r) const;

    /** What the cells of object @p obj may hold. */
    const ObjSet &fieldPts(int obj) const;

    /** Objects transitively reachable from any global via the heap graph
     * (including the globals themselves): the escaped set. */
    const ObjSet &escaped() const { return escaped_; }

    bool isEscaped(int obj) const { return escaped_.count(obj) != 0; }

    /** Direct callees of @p fn. */
    const std::set<int> &callees(int fn) const { return callGraph_[fn]; }

    /** Functions reachable from @p fn (inclusive). */
    std::set<int> reachableFrom(int fn) const;

    /** May-point-to set of the address operand of a Load/Store. */
    const ObjSet &accessPts(int fn, const tir::Instr &ins) const;

  private:
    void collectObjects(const tir::Module &mod);
    void solve(const tir::Module &mod);
    void computeEscaped();

    std::vector<AbstractObject> objects_;
    /** regPts_[fn][reg] */
    std::vector<std::vector<ObjSet>> regPts_;
    std::vector<ObjSet> fieldPts_;
    ObjSet escaped_;
    std::vector<std::set<int>> callGraph_;
    /** site lookup: encoded key -> object id */
    std::vector<std::vector<std::vector<int>>> siteIndex_;
    ObjSet empty_;
};

} // namespace compiler
} // namespace hintm

#endif // HINTM_COMPILER_POINTS_TO_HH
