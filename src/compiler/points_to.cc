#include "points_to.hh"

#include "common/logging.hh"

namespace hintm
{
namespace compiler
{

using tir::Instr;
using tir::Module;
using tir::Opcode;

PointsTo::PointsTo(const Module &mod)
{
    collectObjects(mod);
    solve(mod);
    computeEscaped();
}

void
PointsTo::collectObjects(const Module &mod)
{
    for (int g = 0; g < int(mod.globals.size()); ++g) {
        AbstractObject o;
        o.kind = ObjKind::Global;
        o.globalId = g;
        objects_.push_back(o);
    }

    siteIndex_.resize(mod.functions.size());
    for (int f = 0; f < int(mod.functions.size()); ++f) {
        const auto &fn = mod.functions[f];
        siteIndex_[f].resize(fn.blocks.size());
        for (int b = 0; b < int(fn.blocks.size()); ++b) {
            const auto &instrs = fn.blocks[b].instrs;
            siteIndex_[f][b].assign(instrs.size(), -1);
            for (int i = 0; i < int(instrs.size()); ++i) {
                const Opcode op = instrs[i].op;
                if (op == Opcode::Alloca || op == Opcode::Malloc) {
                    AbstractObject o;
                    o.kind = op == Opcode::Alloca ? ObjKind::Alloca
                                                  : ObjKind::Malloc;
                    o.fn = f;
                    o.block = b;
                    o.instr = i;
                    siteIndex_[f][b][i] = int(objects_.size());
                    objects_.push_back(o);
                }
            }
        }
    }
    fieldPts_.assign(objects_.size(), {});
}

int
PointsTo::siteOf(int fn, int block, int instr) const
{
    return siteIndex_[fn][block][instr];
}

int
PointsTo::globalObject(int global_id) const
{
    return global_id; // globals occupy the first object slots
}

const ObjSet &
PointsTo::regPts(int fn, int r) const
{
    if (r < 0 || r >= int(regPts_[fn].size()))
        return empty_;
    return regPts_[fn][r];
}

const ObjSet &
PointsTo::fieldPts(int obj) const
{
    return fieldPts_[obj];
}

const ObjSet &
PointsTo::accessPts(int fn, const Instr &ins) const
{
    return regPts(fn, ins.a);
}

std::set<int>
PointsTo::reachableFrom(int fn) const
{
    std::set<int> seen;
    std::vector<int> work{fn};
    while (!work.empty()) {
        const int f = work.back();
        work.pop_back();
        if (!seen.insert(f).second)
            continue;
        for (int c : callGraph_[f])
            work.push_back(c);
    }
    return seen;
}

void
PointsTo::solve(const Module &mod)
{
    regPts_.resize(mod.functions.size());
    callGraph_.assign(mod.functions.size(), {});
    for (int f = 0; f < int(mod.functions.size()); ++f)
        regPts_[f].assign(mod.functions[f].numRegs, {});

    // Collect the registers returned by each function.
    std::vector<std::vector<std::pair<int, int>>> retRegs(
        mod.functions.size()); // unused slot kept for symmetry
    auto merge = [](ObjSet &into, const ObjSet &from) {
        bool changed = false;
        for (int o : from)
            changed |= into.insert(o).second;
        return changed;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int f = 0; f < int(mod.functions.size()); ++f) {
            const auto &fn = mod.functions[f];
            for (int b = 0; b < int(fn.blocks.size()); ++b) {
                const auto &instrs = fn.blocks[b].instrs;
                for (int i = 0; i < int(instrs.size()); ++i) {
                    const Instr &ins = instrs[i];
                    switch (ins.op) {
                      case Opcode::GlobalAddr:
                        changed |= regPts_[f][ins.dst]
                                       .insert(globalObject(int(ins.imm)))
                                       .second;
                        break;
                      case Opcode::Alloca:
                      case Opcode::Malloc:
                        changed |= regPts_[f][ins.dst]
                                       .insert(siteOf(f, b, i))
                                       .second;
                        break;
                      case Opcode::Mov:
                      case Opcode::Gep:
                        changed |= merge(regPts_[f][ins.dst],
                                         regPts(f, ins.a));
                        if (ins.op == Opcode::Gep && ins.b >= 0) {
                            // Index registers are integers; nothing to do.
                        }
                        break;
                      case Opcode::Add:
                      case Opcode::Sub:
                        // Conservative: pointer arithmetic through plain
                        // adds keeps provenance of both operands.
                        changed |= merge(regPts_[f][ins.dst],
                                         regPts(f, ins.a));
                        changed |= merge(regPts_[f][ins.dst],
                                         regPts(f, ins.b));
                        break;
                      case Opcode::Load: {
                        for (int o : regPts(f, ins.a)) {
                            changed |= merge(regPts_[f][ins.dst],
                                             fieldPts_[o]);
                        }
                        break;
                      }
                      case Opcode::Store: {
                        const ObjSet &val = regPts(f, ins.b);
                        if (val.empty())
                            break;
                        for (int o : regPts(f, ins.a))
                            changed |= merge(fieldPts_[o], val);
                        break;
                      }
                      case Opcode::Call: {
                        const int callee = int(ins.imm);
                        callGraph_[f].insert(callee);
                        const auto &cfn = mod.functions[callee];
                        for (unsigned p = 0; p < cfn.numParams; ++p) {
                            changed |= merge(regPts_[callee][int(p)],
                                             regPts(f, ins.args[p]));
                        }
                        // Return values: merge every Ret reg of callee.
                        if (ins.dst >= 0) {
                            for (const auto &cb : cfn.blocks) {
                                for (const auto &ci : cb.instrs) {
                                    if (ci.op == Opcode::Ret && ci.a >= 0) {
                                        changed |= merge(
                                            regPts_[f][ins.dst],
                                            regPts(callee, ci.a));
                                    }
                                }
                            }
                        }
                        break;
                      }
                      default:
                        break;
                    }
                }
            }
        }
    }
    (void)retRegs;
}

void
PointsTo::computeEscaped()
{
    std::vector<int> work;
    for (int o = 0; o < int(objects_.size()); ++o) {
        if (objects_[o].kind == ObjKind::Global) {
            escaped_.insert(o);
            work.push_back(o);
        }
    }
    while (!work.empty()) {
        const int o = work.back();
        work.pop_back();
        for (int held : fieldPts_[o]) {
            if (escaped_.insert(held).second)
                work.push_back(held);
        }
    }
}

} // namespace compiler
} // namespace hintm
