#include "race_lint.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "compiler/points_to.hh"

namespace hintm
{
namespace compiler
{

using tir::Instr;
using tir::Module;
using tir::Opcode;

std::string
LintDiagnostic::line() const
{
    std::ostringstream os;
    os << "RACE-LINT [ob" << obligation << "] " << where << ": " << witness;
    return os.str();
}

std::string
LintReport::summary() const
{
    unsigned ob[4] = {0, 0, 0, 0};
    for (const auto &d : diagnostics) {
        if (d.obligation >= 1 && d.obligation <= 3)
            ++ob[d.obligation];
    }
    std::ostringstream os;
    os << "race lint: " << diagnostics.size() << " diagnostic(s)";
    if (!diagnostics.empty())
        os << " (ob1 " << ob[1] << ", ob2 " << ob[2] << ", ob3 " << ob[3]
           << ")";
    os << " over " << safeLoadsChecked << " safe loads + "
       << safeStoresChecked << " safe stores";
    return os.str();
}

std::string
LintReport::render() const
{
    std::ostringstream os;
    for (const auto &d : diagnostics)
        os << d.line() << "\n";
    return os.str();
}

namespace
{

/** Instruction position (also the diagnostic key). */
struct Ref
{
    int fn = -1, block = -1, instr = -1;
    bool operator<(const Ref &o) const
    {
        if (fn != o.fn)
            return fn < o.fn;
        if (block != o.block)
            return block < o.block;
        return instr < o.instr;
    }
    bool operator==(const Ref &o) const
    {
        return fn == o.fn && block == o.block && instr == o.instr;
    }
};

/**
 * May-have-been-initialized object set for the initializing-store
 * dataflow (union meet over paths). A load of o is a first-access
 * witness only when o is absent here at the load — i.e. when NO path
 * from the region entry can initialize o first. This is deliberately
 * the may side of the lattice: flagging the must side would reject
 * feasibility-correlated loop bounds (a copy loop followed by a
 * same-bounds read loop) that the classifier's listing order accepts.
 */
struct InitSet
{
    std::set<int> objs;
    /** Distinguishes an empty solved state from a not-yet-seen block. */
    bool reached = false;

    bool contains(int o) const { return objs.count(o) != 0; }
    void insert(int o) { objs.insert(o); }

    /** Union meet. @return true when this state changed. */
    bool
    meet(const InitSet &other)
    {
        bool changed = !reached;
        reached = true;
        for (int o : other.objs)
            changed |= objs.insert(o).second;
        return changed;
    }
};

/** Bottom-up obligation-2 facts about one whole function body. */
struct FnSummary
{
    /** Objects a load may touch as the function's first access to them
     * (no possible prior initialization), with a witness position. */
    std::map<int, Ref> firstMay;
    /** Objects some path through the function may store or allocate. */
    std::set<int> mayInit;
    bool done = false;
    bool inProgress = false;
};

class Linter
{
  public:
    explicit Linter(const Module &mod) : mod_(mod), pt_(mod) {}

    LintReport
    run()
    {
        HINTM_ASSERT(mod_.threadFunc >= 0,
                     "race lint needs a thread function");
        parallel_ = pt_.reachableFrom(mod_.threadFunc);
        if (mod_.initFunc >= 0)
            init_ = pt_.reachableFrom(mod_.initFunc);

        const std::size_t n = pt_.objects().size();
        summaries_.assign(mod_.functions.size(), FnSummary{});
        conservative_.assign(mod_.functions.size(), FnSummary{});
        localLoads_.assign(mod_.functions.size(), {});
        localInits_.assign(mod_.functions.size(), {});
        collectLocalLoads();
        computeEscape();
        computeWrites();

        privateObj_.assign(n, false);
        for (int o = 0; o < int(n); ++o)
            privateObj_[std::size_t(o)] = isPrivate(o);

        collectSafeStores();
        checkRegions();
        checkHints();
        checkVariants();

        std::sort(rep_.diagnostics.begin(), rep_.diagnostics.end(),
                  [](const LintDiagnostic &a, const LintDiagnostic &b) {
                      if (a.fn != b.fn)
                          return a.fn < b.fn;
                      if (a.block != b.block)
                          return a.block < b.block;
                      if (a.instr != b.instr)
                          return a.instr < b.instr;
                      return a.obligation < b.obligation;
                  });
        return rep_;
    }

  private:
    // ---- formatting -----------------------------------------------------

    std::string
    refStr(const Ref &r) const
    {
        std::ostringstream os;
        os << mod_.functions[std::size_t(r.fn)].name << ":" << r.block
           << ":" << r.instr;
        return os.str();
    }

    std::string
    objName(int o) const
    {
        const AbstractObject &obj = pt_.objects()[std::size_t(o)];
        std::ostringstream os;
        switch (obj.kind) {
          case ObjKind::Global:
            os << "global '"
               << mod_.globals[std::size_t(obj.globalId)].name << "'";
            break;
          case ObjKind::Alloca:
            os << "alloca@"
               << refStr(Ref{obj.fn, obj.block, obj.instr});
            break;
          case ObjKind::Malloc:
            os << "malloc@"
               << refStr(Ref{obj.fn, obj.block, obj.instr});
            break;
        }
        return os.str();
    }

    /** Witness path from @p o up the escape chain to its root. */
    std::string
    escapeChain(int o) const
    {
        std::ostringstream os;
        os << objName(o);
        int cur = o;
        for (int hop = 0; hop < 32; ++hop) {
            auto root = rootNote_.find(cur);
            if (root != rootNote_.end()) {
                os << " " << root->second;
                break;
            }
            auto par = escapeParent_.find(cur);
            if (par == escapeParent_.end())
                break;
            cur = par->second;
            os << " <- held by " << objName(cur);
        }
        return os.str();
    }

    void
    diag(const Ref &r, int obligation, const std::string &witness)
    {
        LintDiagnostic d;
        d.fn = r.fn;
        d.block = r.block;
        d.instr = r.instr;
        d.obligation = obligation;
        d.where = refStr(r);
        d.witness = witness;
        rep_.diagnostics.push_back(std::move(d));
        flagged_.emplace(r, obligation);
    }

    // ---- object facts ---------------------------------------------------

    void
    collectLocalLoads()
    {
        for (int f = 0; f < int(mod_.functions.size()); ++f) {
            const auto &fn = mod_.functions[std::size_t(f)];
            for (int b = 0; b < int(fn.blocks.size()); ++b) {
                const auto &instrs = fn.blocks[std::size_t(b)].instrs;
                for (int i = 0; i < int(instrs.size()); ++i) {
                    const Instr &ins = instrs[std::size_t(i)];
                    if (ins.op == Opcode::Load) {
                        for (int o : pt_.accessPts(f, ins))
                            localLoads_[std::size_t(f)].emplace(
                                o, Ref{f, b, i});
                    } else if (ins.op == Opcode::Store) {
                        for (int o : pt_.accessPts(f, ins))
                            localInits_[std::size_t(f)].insert(o);
                    } else if (ins.op == Opcode::Alloca ||
                               ins.op == Opcode::Malloc) {
                        const int o = pt_.siteOf(f, b, i);
                        if (o >= 0)
                            localInits_[std::size_t(f)].insert(o);
                    }
                }
            }
        }
    }

    /**
     * Own escape lattice: everything reachable (via the heap graph) from
     * a global, or from a value stored through a pointer the analysis
     * could not resolve. The second root family is the conservatism the
     * classifier lacks — it trusts unresolved stores to touch nothing.
     */
    void
    computeEscape()
    {
        std::vector<int> work;
        auto root = [&](int o, const std::string &note) {
            if (escaped_.insert(o).second) {
                rootNote_.emplace(o, note);
                work.push_back(o);
            }
        };
        for (int o = 0; o < int(pt_.objects().size()); ++o) {
            if (pt_.objects()[std::size_t(o)].kind == ObjKind::Global)
                root(o, "(is a global)");
        }
        for (int f = 0; f < int(mod_.functions.size()); ++f) {
            const auto &fn = mod_.functions[std::size_t(f)];
            for (int b = 0; b < int(fn.blocks.size()); ++b) {
                const auto &instrs = fn.blocks[std::size_t(b)].instrs;
                for (int i = 0; i < int(instrs.size()); ++i) {
                    const Instr &ins = instrs[std::size_t(i)];
                    if (ins.op != Opcode::Store ||
                        !pt_.accessPts(f, ins).empty())
                        continue;
                    for (int v : pt_.regPts(f, ins.b))
                        root(v, "(stored through untracked pointer at " +
                                    refStr(Ref{f, b, i}) + ")");
                }
            }
        }
        while (!work.empty()) {
            const int o = work.back();
            work.pop_back();
            for (int t : pt_.fieldPts(o)) {
                if (escaped_.insert(t).second) {
                    escapeParent_.emplace(t, o);
                    work.push_back(t);
                }
            }
        }
    }

    /** First store in the parallel region that may write each object. */
    void
    computeWrites()
    {
        for (int f : parallel_) {
            const auto &fn = mod_.functions[std::size_t(f)];
            for (int b = 0; b < int(fn.blocks.size()); ++b) {
                const auto &instrs = fn.blocks[std::size_t(b)].instrs;
                for (int i = 0; i < int(instrs.size()); ++i) {
                    const Instr &ins = instrs[std::size_t(i)];
                    if (ins.op != Opcode::Store)
                        continue;
                    const ObjSet &objs = pt_.accessPts(f, ins);
                    if (objs.empty()) {
                        if (!hasWildStore_) {
                            hasWildStore_ = true;
                            wildStore_ = Ref{f, b, i};
                        }
                        continue;
                    }
                    for (int o : objs)
                        writeWitness_.emplace(o, Ref{f, b, i});
                }
            }
        }
    }

    bool
    writtenInParallel(int o, Ref *witness) const
    {
        auto it = writeWitness_.find(o);
        if (it != writeWitness_.end()) {
            *witness = it->second;
            return true;
        }
        if (hasWildStore_) {
            *witness = wildStore_;
            return true;
        }
        return false;
    }

    bool
    isPrivate(int o) const
    {
        const AbstractObject &obj = pt_.objects()[std::size_t(o)];
        if (escaped_.count(o) != 0)
            return false;
        switch (obj.kind) {
          case ObjKind::Alloca:
            return true;
          case ObjKind::Malloc:
            return parallel_.count(obj.fn) != 0 &&
                   init_.count(obj.fn) == 0;
          case ObjKind::Global:
            return false;
        }
        return false;
    }

    /** Why @p o is not thread-private, for obligation-1 store witnesses. */
    std::string
    notPrivateReason(int o) const
    {
        const AbstractObject &obj = pt_.objects()[std::size_t(o)];
        if (obj.kind == ObjKind::Global)
            return objName(o) + " is shared by construction";
        if (escaped_.count(o) != 0)
            return "escapes: " + escapeChain(o);
        if (obj.kind == ObjKind::Malloc) {
            if (init_.count(obj.fn) != 0)
                return objName(o) +
                       " is allocated in the initialization phase";
            if (parallel_.count(obj.fn) == 0)
                return objName(o) +
                       " is allocated outside the parallel region";
        }
        return objName(o) + " is not provably thread-private";
    }

    // ---- obligation-2 function summaries --------------------------------

    std::string
    baseName(const std::string &name) const
    {
        const std::size_t pos = name.find("$safe");
        return pos == std::string::npos ? name : name.substr(0, pos);
    }

    const std::set<int> &
    reach(int f)
    {
        auto it = reachCache_.find(f);
        if (it == reachCache_.end())
            it = reachCache_.emplace(f, pt_.reachableFrom(f)).first;
        return it->second;
    }

    /** Objects stored or allocated anywhere under @p f. */
    const std::set<int> &
    initsClosure(int f)
    {
        auto it = initsClosure_.find(f);
        if (it != initsClosure_.end())
            return it->second;
        std::set<int> all;
        for (int g : reach(f))
            all.insert(localInits_[std::size_t(g)].begin(),
                       localInits_[std::size_t(g)].end());
        return initsClosure_.emplace(f, std::move(all)).first->second;
    }

    /** Recursion fallback: every load anywhere under @p f may be first. */
    const FnSummary &
    conservativeOf(int f)
    {
        FnSummary &s = conservative_[std::size_t(f)];
        if (!s.done) {
            for (int g : reach(f)) {
                for (const auto &kv : localLoads_[std::size_t(g)])
                    s.firstMay.emplace(kv.first, kv.second);
            }
            s.done = true;
        }
        return s;
    }

    const FnSummary &
    summaryOf(int f)
    {
        FnSummary &s = summaries_[std::size_t(f)];
        if (s.done)
            return s;
        if (s.inProgress)
            return conservativeOf(f);
        s.inProgress = true;

        const auto &fn = mod_.functions[std::size_t(f)];
        std::vector<InitSet> in(fn.blocks.size());
        if (!fn.blocks.empty()) {
            in[0].reached = true;
            std::vector<int> work{0};
            while (!work.empty()) {
                const int b = work.back();
                work.pop_back();
                InitSet st = in[std::size_t(b)];
                std::vector<int> succ;
                transferBlock(f, b, 0, st, nullptr, &succ);
                for (int t : succ) {
                    if (in[std::size_t(t)].meet(st))
                        work.push_back(t);
                }
            }
        }
        // Recording pass over the solved states.
        for (int b = 0; b < int(fn.blocks.size()); ++b) {
            if (!in[std::size_t(b)].reached)
                continue; // unreachable
            InitSet st = in[std::size_t(b)];
            transferBlock(f, b, 0, st, &s, nullptr);
        }
        s.mayInit = initsClosure(f);
        s.inProgress = false;
        s.done = true;
        return s;
    }

    /**
     * Run the initializing-store transfer function over the instructions
     * of block @p b starting at @p start. When @p record is set, loads
     * that no path can have initialized are captured into it; when
     * @p succ is set, branch targets are appended (unless the scan
     * leaves the TX region first).
     * @return true when the scan ended the region (TxEnd) or the
     *         function (Ret) rather than falling through to a branch.
     */
    bool
    transferBlock(int f, int b, int start, InitSet &st, FnSummary *record,
                  std::vector<int> *succ)
    {
        const auto &instrs =
            mod_.functions[std::size_t(f)].blocks[std::size_t(b)].instrs;
        for (int i = start; i < int(instrs.size()); ++i) {
            const Instr &ins = instrs[std::size_t(i)];
            switch (ins.op) {
              case Opcode::Load:
                if (record) {
                    for (int o : pt_.accessPts(f, ins)) {
                        if (!st.contains(o))
                            record->firstMay.emplace(o, Ref{f, b, i});
                    }
                }
                break;
              case Opcode::Store:
                for (int o : pt_.accessPts(f, ins))
                    st.insert(o);
                break;
              case Opcode::Alloca:
              case Opcode::Malloc: {
                // A fresh object has no prior value an abort could
                // expose: allocation counts as initialization.
                const int o = pt_.siteOf(f, b, i);
                if (o >= 0)
                    st.insert(o);
                break;
              }
              case Opcode::Call: {
                if (record) {
                    const FnSummary &cs = summaryOf(int(ins.imm));
                    for (const auto &kv : cs.firstMay) {
                        if (!st.contains(kv.first))
                            record->firstMay.emplace(kv.first,
                                                     kv.second);
                    }
                }
                for (int o : initsClosure(int(ins.imm)))
                    st.insert(o);
                break;
              }
              case Opcode::TxEnd:
                return true;
              case Opcode::Ret:
                return true;
              case Opcode::Br:
                if (succ)
                    succ->push_back(int(ins.imm));
                break;
              case Opcode::CondBr:
                if (succ) {
                    succ->push_back(int(ins.imm));
                    succ->push_back(int(ins.imm2));
                }
                break;
              default:
                break;
            }
        }
        return false;
    }

    // ---- obligation 2: per-TX-span CFG check ----------------------------

    void
    collectSafeStores()
    {
        for (int f = 0; f < int(mod_.functions.size()); ++f) {
            const auto &fn = mod_.functions[std::size_t(f)];
            for (int b = 0; b < int(fn.blocks.size()); ++b) {
                const auto &instrs = fn.blocks[std::size_t(b)].instrs;
                for (int i = 0; i < int(instrs.size()); ++i) {
                    const Instr &ins = instrs[std::size_t(i)];
                    if (ins.op == Opcode::Store && ins.safe)
                        safeStores_.push_back(Ref{f, b, i});
                }
            }
        }
    }

    void
    checkRegions()
    {
        for (int f = 0; f < int(mod_.functions.size()); ++f) {
            const auto &fn = mod_.functions[std::size_t(f)];
            for (int b = 0; b < int(fn.blocks.size()); ++b) {
                const auto &instrs = fn.blocks[std::size_t(b)].instrs;
                for (int i = 0; i < int(instrs.size()); ++i) {
                    if (instrs[std::size_t(i)].op == Opcode::TxBegin)
                        analyzeSpan(f, b, i);
                }
            }
        }
    }

    /**
     * One static TX span: dataflow from the instruction after the
     * TxBegin at (@p f, @p b0, @p i0), stopping at TxEnd. Collects, per
     * object, whether some path's first access is a load, then checks
     * every safe store the span contains.
     */
    void
    analyzeSpan(int f, int b0, int i0)
    {
        // Span-scoped recorder: firstMay doubles as the may-load-first
        // map, mustStore is unused.
        FnSummary span;
        std::set<Ref> directStores;
        std::set<int> spanFns;

        std::map<int, InitSet> in;
        {
            InitSet st;
            st.reached = true;
            std::vector<int> succ;
            std::vector<int> work;
            if (!transferBlock(f, b0, i0 + 1, st, nullptr, &succ)) {
                for (int t : succ) {
                    auto it = in.emplace(t, InitSet{}).first;
                    if (it->second.meet(st))
                        work.push_back(t);
                }
            }
            while (!work.empty()) {
                const int b = work.back();
                work.pop_back();
                InitSet st2 = in[b];
                std::vector<int> succ2;
                if (transferBlock(f, b, 0, st2, nullptr, &succ2))
                    continue;
                for (int t : succ2) {
                    auto it = in.emplace(t, InitSet{}).first;
                    if (it->second.meet(st2))
                        work.push_back(t);
                }
            }
        }

        // Recording pass: suffix of the TxBegin block, then every block
        // the span reaches, with a span-membership recorder.
        auto recordIn = [&](int blk, int start, InitSet st) {
            const auto &instrs = mod_.functions[std::size_t(f)]
                                     .blocks[std::size_t(blk)]
                                     .instrs;
            for (int i = start; i < int(instrs.size()); ++i) {
                const Instr &ins = instrs[std::size_t(i)];
                if (ins.op == Opcode::TxEnd || ins.op == Opcode::Ret)
                    break;
                if (ins.op == Opcode::Store)
                    directStores.insert(Ref{f, blk, i});
                if (ins.op == Opcode::Call) {
                    const auto &r = reach(int(ins.imm));
                    spanFns.insert(r.begin(), r.end());
                }
            }
            InitSet tmp = st;
            transferBlock(f, blk, start, tmp, &span, nullptr);
        };
        {
            InitSet st;
            st.reached = true;
            recordIn(b0, i0 + 1, st);
        }
        for (const auto &kv : in) {
            if (kv.second.reached)
                recordIn(kv.first, 0, kv.second);
        }

        // Every safe store this span contains must target only objects
        // no path of the span may load first.
        std::ostringstream region;
        region << refStr(Ref{f, b0, i0});
        for (const Ref &s : safeStores_) {
            const bool contained = s.fn == f
                                       ? directStores.count(s) != 0
                                       : spanFns.count(s.fn) != 0;
            if (!contained)
                continue;
            ++containCount_[s];
            if (flaggedOb2_.count(s) != 0)
                continue;
            const Instr &ins = mod_.functions[std::size_t(s.fn)]
                                   .blocks[std::size_t(s.block)]
                                   .instrs[std::size_t(s.instr)];
            for (int o : pt_.accessPts(s.fn, ins)) {
                auto it = span.firstMay.find(o);
                if (it == span.firstMay.end())
                    continue;
                flaggedOb2_.insert(s);
                diag(s, 2,
                     "not an initializing store: in TX region " +
                         region.str() + ", the first access to " +
                         objName(o) + " may be the load at " +
                         refStr(it->second));
                break;
            }
        }
    }

    // ---- obligation 1 + hint walk ---------------------------------------

    void
    checkHints()
    {
        for (int f = 0; f < int(mod_.functions.size()); ++f) {
            const auto &fn = mod_.functions[std::size_t(f)];
            for (int b = 0; b < int(fn.blocks.size()); ++b) {
                const auto &instrs = fn.blocks[std::size_t(b)].instrs;
                for (int i = 0; i < int(instrs.size()); ++i) {
                    const Instr &ins = instrs[std::size_t(i)];
                    if (!ins.safe || !tir::isMemAccess(ins.op))
                        continue;
                    const Ref ref{f, b, i};
                    if (ins.op == Opcode::Load)
                        checkSafeLoad(ref, ins);
                    else
                        checkSafeStore(ref, ins);
                }
            }
        }
    }

    void
    checkSafeLoad(const Ref &ref, const Instr &ins)
    {
        ++rep_.safeLoadsChecked;
        const ObjSet &objs = pt_.accessPts(ref.fn, ins);
        if (objs.empty()) {
            diag(ref, 1,
                 "safe load of an unresolved address: the points-to set "
                 "is empty, nothing justifies the hint");
            return;
        }
        for (int o : objs) {
            if (privateObj_[std::size_t(o)])
                continue;
            Ref w;
            if (!writtenInParallel(o, &w))
                continue; // read-only in the parallel region
            std::string why = "may race: " + objName(o) +
                              " is written in the parallel region at " +
                              refStr(w);
            if (escaped_.count(o) != 0 &&
                pt_.objects()[std::size_t(o)].kind != ObjKind::Global)
                why += "; " + escapeChain(o);
            diag(ref, 1, why);
            return; // one witness per access is enough
        }
    }

    void
    checkSafeStore(const Ref &ref, const Instr &ins)
    {
        ++rep_.safeStoresChecked;
        const ObjSet &objs = pt_.accessPts(ref.fn, ins);
        if (objs.empty()) {
            diag(ref, 1,
                 "safe store through an unresolved address: the "
                 "points-to set is empty, nothing justifies the hint");
        } else {
            for (int o : objs) {
                if (privateObj_[std::size_t(o)])
                    continue;
                diag(ref, 1, "safe store to a non-private object: " +
                                 notPrivateReason(o));
                break;
            }
        }
        if (containCount_.count(ref) == 0) {
            diag(ref, 2,
                 "safe store is not contained in any TX region, so no "
                 "initializing-store argument applies");
        }
    }

    // ---- obligation 3: replicated-variant consistency -------------------

    void
    checkVariants()
    {
        std::map<std::string, int> originals;
        for (int f = 0; f < int(mod_.functions.size()); ++f) {
            const std::string &name =
                mod_.functions[std::size_t(f)].name;
            if (baseName(name) == name)
                originals.emplace(name, f);
        }
        for (int f = 0; f < int(mod_.functions.size()); ++f) {
            const std::string &name =
                mod_.functions[std::size_t(f)].name;
            const std::string base = baseName(name);
            if (base == name)
                continue;
            auto it = originals.find(base);
            if (it == originals.end())
                continue;
            compareVariant(it->second, f);
        }
    }

    void
    compareVariant(int orig, int clone)
    {
        const auto &a = mod_.functions[std::size_t(orig)];
        const auto &b = mod_.functions[std::size_t(clone)];
        if (a.blocks.size() != b.blocks.size())
            return;
        for (std::size_t blk = 0; blk < a.blocks.size(); ++blk) {
            const auto &ia = a.blocks[blk].instrs;
            const auto &ib = b.blocks[blk].instrs;
            if (ia.size() != ib.size())
                return;
            for (std::size_t i = 0; i < ia.size(); ++i) {
                if (ia[i].op != ib[i].op)
                    return;
            }
        }
        // Structural twins: a hint present on one side only is fine when
        // sound (that asymmetry is the point of replication), but a
        // diverging hint that itself failed obligation 1/2 is corrupt.
        for (std::size_t blk = 0; blk < a.blocks.size(); ++blk) {
            const auto &ia = a.blocks[blk].instrs;
            const auto &ib = b.blocks[blk].instrs;
            for (std::size_t i = 0; i < ia.size(); ++i) {
                if (ia[i].safe == ib[i].safe ||
                    !tir::isMemAccess(ia[i].op))
                    continue;
                const Ref safeSide = ia[i].safe
                                         ? Ref{orig, int(blk), int(i)}
                                         : Ref{clone, int(blk), int(i)};
                auto fl = flagged_.find(safeSide);
                if (fl == flagged_.end())
                    continue;
                const int other =
                    safeSide.fn == orig ? clone : orig;
                std::ostringstream os;
                os << "hint diverges from replicated variant '"
                   << mod_.functions[std::size_t(other)].name
                   << "' and already failed obligation " << fl->second
                   << " here";
                diag(safeSide, 3, os.str());
            }
        }
    }

    // ---- state ----------------------------------------------------------

    const Module &mod_;
    PointsTo pt_;
    LintReport rep_;

    std::set<int> parallel_;
    std::set<int> init_;

    std::set<int> escaped_;
    std::map<int, int> escapeParent_;
    std::map<int, std::string> rootNote_;

    std::map<int, Ref> writeWitness_;
    bool hasWildStore_ = false;
    Ref wildStore_;

    std::vector<bool> privateObj_;

    std::vector<FnSummary> summaries_;
    std::vector<FnSummary> conservative_;
    std::vector<std::map<int, Ref>> localLoads_;
    std::vector<std::set<int>> localInits_;
    std::unordered_map<int, std::set<int>> initsClosure_;
    std::unordered_map<int, std::set<int>> reachCache_;

    std::vector<Ref> safeStores_;
    std::map<Ref, unsigned> containCount_;
    std::set<Ref> flaggedOb2_;
    std::map<Ref, int> flagged_;
};

} // namespace

LintReport
lintRaces(const Module &mod)
{
    Linter linter(mod);
    return linter.run();
}

} // namespace compiler
} // namespace hintm
