/**
 * @file
 * Static soundness checker for safety hints: independently re-derives
 * may-race facts over TxIR and verifies every safe-hinted load/store
 * against three obligations:
 *
 *  1. Every object the access may touch is provably thread-private or
 *     read-only within the parallel region (own conservative escape
 *     lattice, rebuilt from the points-to heap graph rather than trusting
 *     the classifier's escape set).
 *  2. Safe stores satisfy the initializing-store discipline: along every
 *     CFG path of every enclosing TX region, the first access to each
 *     target object is a store (the classifier only approximates this in
 *     block-listing order).
 *  3. Hints are consistent across replicated function variants: a
 *     structural twin may carry extra hints only when those hints are
 *     themselves sound.
 *
 * The pass is deliberately redundant with compiler::annotateSafety — it
 * shares points_to but nothing else, so a classifier bug (or a corrupted
 * hint bit) shows up as a structured diagnostic instead of silent
 * conflict-tracking loss in the HTM.
 */

#ifndef HINTM_COMPILER_RACE_LINT_HH
#define HINTM_COMPILER_RACE_LINT_HH

#include <string>
#include <vector>

#include "tir/ir.hh"

namespace hintm
{
namespace compiler
{

/** One unsoundness witness against a safe-hinted access. */
struct LintDiagnostic
{
    /** Position of the suspect safe-hinted instruction. */
    int fn = -1;
    int block = -1;
    int instr = -1;
    /** Which obligation failed (1 = may-race, 2 = initializing store,
     * 3 = replicated-variant consistency). */
    int obligation = 0;
    /** `function:block:instr` of the suspect access. */
    std::string where;
    /** Witness path / explanation (escape chain, racing store,
     * load-before-store position, diverging variant). */
    std::string witness;

    /** One formatted diagnostic line. */
    std::string line() const;
};

/** Everything the lint pass found. */
struct LintReport
{
    std::vector<LintDiagnostic> diagnostics;
    unsigned safeLoadsChecked = 0;
    unsigned safeStoresChecked = 0;

    bool clean() const { return diagnostics.empty(); }
    /** One-line outcome (counts per obligation). */
    std::string summary() const;
    /** All diagnostic lines, newline-separated. */
    std::string render() const;
};

/**
 * Verify all safety hints in @p mod. The module must verify and have a
 * thread function; the pass never modifies it.
 */
LintReport lintRaces(const tir::Module &mod);

} // namespace compiler
} // namespace hintm

#endif // HINTM_COMPILER_RACE_LINT_HH
