/**
 * @file
 * HinTM's static memory-access classification (§IV-A): decides which
 * load/store instructions can carry safety hints and rewrites the module
 * accordingly (the load_word_safe / store_word_safe analogue is the
 * per-instruction `safe` flag).
 *
 * Three analyses mirror the paper's pipeline:
 *  1. Capture tracking / escape analysis for stack objects: loads (and
 *     initializing stores) to non-escaping allocas are safe.
 *  2. Algorithm 1: inter-procedural identification of thread-private
 *     heap data structures — allocations reachable only from the thread
 *     function, never published to shared memory, and de-allocated
 *     within the parallel region.
 *  3. Read-only shared data: objects never stored to inside the parallel
 *     region; their loads are safe.
 *
 * Stores are only safe when additionally *initializing*: the object's
 * first access within every enclosing TX region is a store, so an abort
 * can never expose a stale value (§III). Function replication specializes
 * callees that receive safe pointers from some call sites and unsafe
 * ones from others.
 */

#ifndef HINTM_COMPILER_SAFETY_HH
#define HINTM_COMPILER_SAFETY_HH

#include <string>

#include "tir/ir.hh"

namespace hintm
{
namespace compiler
{

/** Pass configuration (the ablation switches map to paper variants). */
struct SafetyOptions
{
    bool stackAnalysis = true;
    bool heapAnalysis = true;
    bool readOnlyAnalysis = true;
    /** Algorithm 1 criterion: candidate heap objects must be freed within
     * the parallel region. */
    bool requireFreeForHeapPrivate = true;
    bool functionReplication = true;
    unsigned replicationRounds = 3;
};

/** What the pass did (Fig. 5's static-classification inputs). */
struct SafetyReport
{
    unsigned totalLoads = 0;
    unsigned totalStores = 0;
    unsigned safeLoads = 0;
    unsigned safeStores = 0;
    unsigned safeStackObjects = 0;
    unsigned safeHeapObjects = 0;
    unsigned readOnlyObjects = 0;
    unsigned replicatedFunctions = 0;

    // Provenance of the emitted hints: which analysis justified each
    // safe access (every object in the instruction's points-to set was
    // classified by that analysis; "mixed" = the set spans several).
    // Feeds Fig. 5 attribution and the race-lint diagnostics.
    unsigned safeLoadsStack = 0;
    unsigned safeLoadsHeap = 0;
    unsigned safeLoadsReadOnly = 0;
    unsigned safeLoadsMixed = 0;
    unsigned safeStoresStack = 0;
    unsigned safeStoresHeap = 0;
    unsigned safeStoresMixed = 0;

    std::string summary() const;
};

/**
 * Annotate @p mod in place. Clears any existing hints first, so the pass
 * is idempotent. The module must verify and must have a threadFunc.
 */
SafetyReport annotateSafety(tir::Module &mod,
                            const SafetyOptions &opts = {});

} // namespace compiler
} // namespace hintm

#endif // HINTM_COMPILER_SAFETY_HH
