/**
 * @file
 * Host-side parallelism for the experiment runner: a small FIFO thread
 * pool plus a parallel-for helper. Simulations are deterministic and
 * self-contained, so farming independent `core::simulate` calls out to
 * host threads changes wall-clock time only, never results.
 */

#ifndef HINTM_COMMON_PARALLEL_HH
#define HINTM_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hintm
{

/**
 * Fixed-size FIFO thread pool. Tasks are plain closures; submission
 * order is the dispatch order. Exceptions thrown by tasks are captured
 * and rethrown (first one wins) from wait().
 */
class ThreadPool
{
  public:
    /** @param workers host threads; 0 means defaultWorkers(). */
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; it may start running immediately. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow the
     * first captured task exception, if any.
     */
    void wait();

    unsigned workers() const { return unsigned(threads_.size()); }

    /** Hardware concurrency, with a floor of 1. */
    static unsigned defaultWorkers();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    unsigned running_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Run fn(0) .. fn(n-1) on @p workers host threads and block until all
 * complete. workers <= 1 executes inline, with no thread machinery at
 * all — handy for debugging and for exact single-threaded baselines.
 */
void parallelFor(unsigned workers, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace hintm

#endif // HINTM_COMMON_PARALLEL_HH
