#include "metrics.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/logging.hh"

namespace hintm
{

unsigned
Log2Hist::bucketOf(std::uint64_t v)
{
    if (v == 0)
        return 0;
    // bucket k >= 1 holds [2^(k-1), 2^k); bit_width(v) = floor(log2)+1.
    return std::min<unsigned>(unsigned(std::bit_width(v)),
                              numBuckets - 1);
}

void
Log2Hist::add(std::uint64_t v)
{
    ++buckets[bucketOf(v)];
    ++count;
    sum += v;
    max = std::max(max, v);
}

TimeSeries::TimeSeries(Cycle initial_window, std::size_t max_slots)
    : window_(std::max<Cycle>(initial_window, 1)),
      maxSlots_(std::max<std::size_t>(max_slots, 2))
{
}

void
TimeSeries::ensureCovers(Cycle at)
{
    while (at / window_ >= maxSlots_) {
        // Fold adjacent windows together and double the window width.
        const std::size_t n = samples_.size();
        for (std::size_t i = 0; i < (n + 1) / 2; ++i) {
            std::uint64_t v = samples_[2 * i];
            if (2 * i + 1 < n)
                v += samples_[2 * i + 1];
            samples_[i] = v;
        }
        samples_.resize((n + 1) / 2);
        window_ *= 2;
    }
}

void
TimeSeries::add(Cycle at, std::uint64_t v)
{
    ensureCovers(at);
    const std::size_t slot = std::size_t(at / window_);
    if (slot >= samples_.size())
        samples_.resize(slot + 1, 0);
    samples_[slot] += v;
}

void
TimeSeries::addSpan(Cycle begin, Cycle end)
{
    if (end <= begin)
        return;
    ensureCovers(end);
    const std::size_t last = std::size_t(end / window_);
    if (last >= samples_.size())
        samples_.resize(last + 1, 0);
    for (std::size_t w = std::size_t(begin / window_); w <= last; ++w) {
        const Cycle ws = Cycle(w) * window_;
        const Cycle a = std::max(begin, ws);
        const Cycle b = std::min(end, ws + window_);
        if (b > a)
            samples_[w] += b - a;
    }
}

namespace
{

/** Same packing as the journal's site key: 20-bit fields, -1
 * saturates. Keeping the two layers key-compatible lets the report
 * tool join journal SiteStats with SiteMetrics by id. */
std::uint64_t
siteKey(std::int32_t fn, std::int32_t block, std::int32_t instr)
{
    const auto f = [](std::int32_t v) {
        return std::uint64_t(std::uint32_t(v)) & 0xFFFFFu;
    };
    return (f(fn) << 40) | (f(block) << 20) | f(instr);
}

} // namespace

void
MetricsRegistry::beginTx(TxMetricsCtx &m, Cycle now, std::int32_t fn,
                         std::int32_t block, std::int32_t instr)
{
    m.readBlocks = 0;
    m.writeBlocks = 0;
    m.skips.clear();
    m.lastSkip = ~Addr(0);
    m.skipStatic = m.skipDyn = m.skipAnnot = 0;
    m.beginCycle = now;
    m.nextReadMilestone = 0;
    m.nextWriteMilestone = 0;
    m.fn = fn;
    m.block = block;
    m.instr = instr;
    m.open = true;
}

namespace
{

/** Per-access bytes: TxIR loads/stores move one 8-byte word. */
constexpr std::uint64_t accessBytes = 8;

} // namespace

void
MetricsRegistry::closeCommit(TxMetricsCtx &m, bool hint_saved)
{
    HINTM_ASSERT(m.open, "closing a metrics ctx that is not open");
    SiteMetrics &s = site(m.fn, m.block, m.instr);
    ++s.commits;
    const std::uint64_t tracked = m.readBlocks + m.writeBlocks;
    s.peakTrackedSum += tracked;
    s.peakTrackedMax = std::max(s.peakTrackedMax, tracked);
    trackedAtCommit.add(tracked);
    if (hint_saved) {
        ++s.hintSavedCommits;
        ++hintSavedCommits;
    }
    s.skipStatic += m.skipStatic;
    s.skipDyn += m.skipDyn;
    s.skipAnnot += m.skipAnnot;
    s.skippedBlocksSum += m.skips.size();
    s.skippedBytes +=
        (m.skipStatic + m.skipDyn + m.skipAnnot) * accessBytes;
    skipStaticAccesses += m.skipStatic;
    skipDynAccesses += m.skipDyn;
    skipAnnotAccesses += m.skipAnnot;
    m.open = false;
}

void
MetricsRegistry::closeCapacityAbort(TxMetricsCtx &m,
                                    std::uint64_t tracked)
{
    HINTM_ASSERT(m.open, "closing a metrics ctx that is not open");
    SiteMetrics &s = site(m.fn, m.block, m.instr);
    ++s.capacityAborts;
    ++capacityAborts;
    s.trackedAtCapacitySum += tracked;
    trackedAtCapacityAbort.add(tracked);
    s.skipStatic += m.skipStatic;
    s.skipDyn += m.skipDyn;
    s.skipAnnot += m.skipAnnot;
    s.skippedBlocksSum += m.skips.size();
    s.skippedBytes +=
        (m.skipStatic + m.skipDyn + m.skipAnnot) * accessBytes;
    skipStaticAccesses += m.skipStatic;
    skipDynAccesses += m.skipDyn;
    skipAnnotAccesses += m.skipAnnot;
    m.open = false;
}

void
MetricsRegistry::closeOther(TxMetricsCtx &m)
{
    HINTM_ASSERT(m.open, "closing a metrics ctx that is not open");
    SiteMetrics &s = site(m.fn, m.block, m.instr);
    s.skipStatic += m.skipStatic;
    s.skipDyn += m.skipDyn;
    s.skipAnnot += m.skipAnnot;
    s.skippedBlocksSum += m.skips.size();
    s.skippedBytes +=
        (m.skipStatic + m.skipDyn + m.skipAnnot) * accessBytes;
    skipStaticAccesses += m.skipStatic;
    skipDynAccesses += m.skipDyn;
    skipAnnotAccesses += m.skipAnnot;
    m.open = false;
}

void
MetricsRegistry::recordOverflowLine(bool tracked, bool safe_skipped)
{
    if (tracked)
        ++ovTracked;
    else if (safe_skipped)
        ++ovSafeSkipped;
    else
        ++ovOther;
}

MetricsRegistry::SiteMetrics &
MetricsRegistry::site(std::int32_t fn, std::int32_t block,
                      std::int32_t instr)
{
    SiteMetrics &s = sites_[siteKey(fn, block, instr)];
    if (s.fn == -1 && fn != -1) {
        s.fn = fn;
        s.block = block;
        s.instr = instr;
    }
    return s;
}

std::vector<const MetricsRegistry::SiteMetrics *>
MetricsRegistry::sitesByPressure() const
{
    std::vector<const SiteMetrics *> out;
    out.reserve(sites_.size());
    for (const auto &kv : sites_)
        out.push_back(&kv.second);
    std::sort(out.begin(), out.end(),
              [](const SiteMetrics *a, const SiteMetrics *b) {
                  if (a->capacityAborts != b->capacityAborts)
                      return a->capacityAborts > b->capacityAborts;
                  if (a->peakTrackedMax != b->peakTrackedMax)
                      return a->peakTrackedMax > b->peakTrackedMax;
                  return siteKey(a->fn, a->block, a->instr) <
                         siteKey(b->fn, b->block, b->instr);
              });
    return out;
}

void
MetricsRegistry::setFunctionNames(std::vector<std::string> names)
{
    fnNames_ = std::move(names);
}

std::string
MetricsRegistry::siteName(std::int32_t fn, std::int32_t block,
                          std::int32_t instr) const
{
    if (fn < 0)
        return "(unknown)";
    std::ostringstream os;
    if (std::size_t(fn) < fnNames_.size())
        os << fnNames_[std::size_t(fn)];
    else
        os << "fn" << fn;
    os << ":" << block << ":" << instr;
    return os.str();
}

void
MetricsRegistry::initNuma(unsigned nodes)
{
    if (nodes == numaNodes_)
        return;
    numaNodes_ = nodes;
    numaMatrix_.assign(std::size_t(nodes) * nodes, 0);
}

} // namespace hintm
