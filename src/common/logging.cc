#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hintm
{
namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throw instead of abort() so unit tests can observe panics.
    throw std::logic_error("panic: " + msg);
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace hintm
