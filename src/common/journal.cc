#include "journal.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/trace.hh"

namespace hintm
{

const char *
txOutcomeName(TxOutcome o)
{
    switch (o) {
      case TxOutcome::Commit: return "commit";
      case TxOutcome::Abort: return "abort";
      case TxOutcome::FallbackCommit: return "fallback";
      case TxOutcome::ConvertedCommit: return "converted";
    }
    return "?";
}

namespace
{

/** Site key: fn/block/instr packed into 20-bit fields (-1 saturates). */
std::uint64_t
siteKey(std::int32_t fn, std::int32_t block, std::int32_t instr)
{
    const auto f = [](std::int32_t v) {
        return std::uint64_t(std::uint32_t(v)) & 0xFFFFFu;
    };
    return (f(fn) << 40) | (f(block) << 20) | f(instr);
}

} // namespace

TxJournal::TxJournal(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1))
{
    // The ring grows lazily up to capacity_: short runs never pay for
    // the full allocation, long runs allocate exactly once each.
    ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void
TxJournal::push(const TxRecord &r)
{
    // Ring append. Once full, overwrite the oldest slot and count the
    // displaced record as dropped (bounded memory on genome-large).
    if (ring_.size() < capacity_) {
        ring_.push_back(r);
    } else {
        if (pushed_ == capacity_) {
            trace::event(trace::Category::Journal, r.end,
                         "TX journal ring full (", capacity_,
                         " records): oldest records now drop");
        }
        ring_[pushed_ % capacity_] = r;
    }
    ++pushed_;

    // Exact aggregates, immune to ring drops.
    SiteStats &s = sites_[siteKey(r.fn, r.block, r.instr)];
    if (s.fn == -1 && r.fn != -1) {
        s.fn = r.fn;
        s.block = r.block;
        s.instr = r.instr;
    }
    switch (r.outcome) {
      case TxOutcome::Commit:
        ++totals_.commits;
        ++s.commits;
        s.footprintSum += r.readBlocks + r.writeBlocks;
        break;
      case TxOutcome::FallbackCommit:
        ++totals_.fallbackCommits;
        ++s.fallbackCommits;
        break;
      case TxOutcome::ConvertedCommit:
        ++totals_.convertedCommits;
        ++s.convertedCommits;
        break;
      case TxOutcome::Abort: {
        const unsigned reason = std::min<unsigned>(r.reason,
                                                   maxReasons - 1);
        ++totals_.aborts[reason];
        ++s.aborts[reason];
        const Cycle lost = r.end >= r.begin ? r.end - r.begin : 0;
        totals_.cyclesLostToAborts += lost;
        s.cyclesLostToAborts += lost;
        if (r.offendingValid) {
            auto hot = std::find_if(s.hotBlocks.begin(),
                                    s.hotBlocks.end(),
                                    [&](const HotBlock &h) {
                                        return h.addr == r.offendingAddr;
                                    });
            if (hot != s.hotBlocks.end())
                ++hot->count;
            else if (s.hotBlocks.size() < hotBlockCap)
                s.hotBlocks.push_back({r.offendingAddr, 1});
            else {
                ++s.otherOffenders;
                s.hotBlocksSaturated = true;
            }
        }
        break;
      }
    }
}

std::size_t
TxJournal::size() const
{
    return std::min<std::uint64_t>(pushed_, capacity_);
}

std::uint64_t
TxJournal::dropped() const
{
    return pushed_ > capacity_ ? pushed_ - capacity_ : 0;
}

const TxRecord &
TxJournal::at(std::size_t i) const
{
    HINTM_ASSERT(i < size(), "journal index out of range");
    if (pushed_ <= capacity_)
        return ring_[i];
    // Wrapped: the oldest retained record sits at the write cursor.
    return ring_[(pushed_ + i) % capacity_];
}

std::vector<const TxJournal::SiteStats *>
TxJournal::sitesByAborts() const
{
    std::vector<const SiteStats *> out;
    out.reserve(sites_.size());
    for (const auto &kv : sites_)
        out.push_back(&kv.second);
    std::sort(out.begin(), out.end(),
              [](const SiteStats *a, const SiteStats *b) {
                  const std::uint64_t aa = a->totalAborts();
                  const std::uint64_t bb = b->totalAborts();
                  if (aa != bb)
                      return aa > bb;
                  return siteKey(a->fn, a->block, a->instr) <
                         siteKey(b->fn, b->block, b->instr);
              });
    return out;
}

std::vector<const TxJournal::SiteStats *>
TxJournal::sitesByCyclesLost() const
{
    std::vector<const SiteStats *> out;
    out.reserve(sites_.size());
    for (const auto &kv : sites_)
        out.push_back(&kv.second);
    std::sort(out.begin(), out.end(),
              [](const SiteStats *a, const SiteStats *b) {
                  if (a->cyclesLostToAborts != b->cyclesLostToAborts)
                      return a->cyclesLostToAborts > b->cyclesLostToAborts;
                  const std::uint64_t aa = a->totalAborts();
                  const std::uint64_t bb = b->totalAborts();
                  if (aa != bb)
                      return aa > bb;
                  return siteKey(a->fn, a->block, a->instr) <
                         siteKey(b->fn, b->block, b->instr);
              });
    return out;
}

std::vector<IntervalSample>
TxJournal::sampleIntervals(Cycle window) const
{
    // A zero window has no meaningful folding: report no samples
    // instead of dividing by zero (callers pass user-given widths).
    if (window == 0)
        return {};
    std::vector<IntervalSample> out;
    const std::size_t n = size();
    if (n == 0)
        return out;

    Cycle last_end = 0;
    for (std::size_t i = 0; i < n; ++i)
        last_end = std::max(last_end, at(i).end);
    const std::size_t windows = std::size_t(last_end / window) + 1;
    out.resize(windows);
    for (std::size_t w = 0; w < windows; ++w)
        out[w].start = Cycle(w) * window;

    for (std::size_t i = 0; i < n; ++i) {
        const TxRecord &r = at(i);
        IntervalSample &s = out[std::size_t(r.end / window)];
        switch (r.outcome) {
          case TxOutcome::Abort:
            ++s.aborts[std::min<unsigned>(r.reason, maxReasons - 1)];
            break;
          case TxOutcome::Commit:
            ++s.commits;
            s.footprintSum += r.readBlocks + r.writeBlocks;
            ++s.footprintCount;
            break;
          case TxOutcome::FallbackCommit:
          case TxOutcome::ConvertedCommit:
            ++s.commits;
            break;
        }
        if (r.outcome == TxOutcome::FallbackCommit ||
            r.outcome == TxOutcome::ConvertedCommit) {
            // Lock occupancy: spread [begin, end) over the windows it
            // overlaps.
            const Cycle lo = std::min(r.begin, r.end);
            for (std::size_t w = std::size_t(lo / window);
                 w <= std::size_t(r.end / window); ++w) {
                const Cycle ws = out[w].start;
                const Cycle we = ws + window;
                const Cycle a = std::max(lo, ws);
                const Cycle b = std::min(r.end, we);
                if (b > a)
                    out[w].fallbackCycles += b - a;
            }
        }
    }
    return out;
}

void
TxJournal::setFunctionNames(std::vector<std::string> names)
{
    fnNames_ = std::move(names);
}

std::string
TxJournal::siteName(std::int32_t fn, std::int32_t block,
                    std::int32_t instr) const
{
    if (fn < 0)
        return "(unknown)";
    std::ostringstream os;
    if (std::size_t(fn) < fnNames_.size())
        os << fnNames_[std::size_t(fn)];
    else
        os << "fn" << fn;
    os << ":" << block << ":" << instr;
    return os.str();
}

} // namespace hintm
