/**
 * @file
 * Deterministic pseudo-random number generation for workload construction
 * and timing jitter. All simulator randomness flows through Rng so that a
 * given seed reproduces a run bit-for-bit.
 */

#ifndef HINTM_COMMON_RNG_HH
#define HINTM_COMMON_RNG_HH

#include <cstdint>

namespace hintm
{

/**
 * xoshiro256** generator seeded via splitmix64. Small, fast, and good
 * enough statistically for workload-shape purposes.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 seeding avoids correlated low-entropy states.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style bounded rejection would be overkill; simple modulo
        // bias is negligible for the bounds used in workloads.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial with probability @p p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return toDouble(next()) < p;
    }

    /** Uniform double in [0,1). */
    double uniform() { return toDouble(next()); }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static double
    toDouble(std::uint64_t x)
    {
        return (x >> 11) * (1.0 / 9007199254740992.0);
    }

    std::uint64_t state[4];
};

} // namespace hintm

#endif // HINTM_COMMON_RNG_HH
