#include "table.hh"

#include <algorithm>
#include <cstdio>

namespace hintm
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string cell = i < cells.size() ? cells[i] : "";
            os << cell << std::string(widths[i] - cell.size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
}

std::ostream &
operator<<(std::ostream &os, const TextTable &t)
{
    t.print(os);
    return os;
}

} // namespace hintm
