#include "trace.hh"

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace hintm
{
namespace trace
{

namespace
{

constexpr unsigned numCategories =
    unsigned(Category::NumCategories);

const char *const categoryNames[numCategories] = {
    "tx", "htm", "vm", "mem", "sched", "journal",
};

/** Strip leading/trailing whitespace from a spec token. */
std::string
trimmed(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool enabled_[numCategories] = {};
std::ostream *sink_ = nullptr;
std::once_flag envOnce_;
/** Serializes emitLine: machines running on pool threads must not
 * interleave their trace lines mid-record. Category toggles themselves
 * are expected to happen before parallel simulations start. */
std::mutex emitMutex_;

} // namespace

Category
categoryFromName(const std::string &name)
{
    for (unsigned i = 0; i < numCategories; ++i) {
        if (name == categoryNames[i])
            return Category(i);
    }
    std::string valid;
    for (unsigned i = 0; i < numCategories; ++i) {
        if (i)
            valid += ", ";
        valid += categoryNames[i];
    }
    HINTM_FATAL("unknown trace category '", name, "' (valid: ", valid,
                ", or 'all')");
}

void
enable(Category c)
{
    enabled_[unsigned(c)] = true;
}

void
enableFromSpec(const std::string &spec)
{
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        const std::string name = trimmed(spec.substr(pos, end - pos));
        if (name == "all") {
            for (unsigned i = 0; i < numCategories; ++i)
                enabled_[i] = true;
        } else if (!name.empty()) {
            enable(categoryFromName(name));
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
}

void
enableFromEnvironment()
{
    // Machines may be constructed concurrently on pool threads; apply
    // the environment exactly once, race-free.
    std::call_once(envOnce_, [] {
        if (const char *spec = std::getenv("HINTM_TRACE"))
            enableFromSpec(spec);
    });
}

void
disableAll()
{
    for (unsigned i = 0; i < numCategories; ++i)
        enabled_[i] = false;
}

bool
enabled(Category c)
{
    return enabled_[unsigned(c)];
}

void
setSink(std::ostream *os)
{
    sink_ = os;
}

namespace detail
{

void
emitLine(Category c, Cycle cycle, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(emitMutex_);
    std::ostream &os = sink_ ? *sink_ : std::cerr;
    os << cycle << ": " << categoryNames[unsigned(c)] << ": " << msg
       << "\n";
}

} // namespace detail
} // namespace trace
} // namespace hintm
