/**
 * @file
 * Fundamental scalar types and address-manipulation helpers shared by every
 * subsystem of the HinTM simulator.
 */

#ifndef HINTM_COMMON_TYPES_HH
#define HINTM_COMMON_TYPES_HH

#include <cstdint>

namespace hintm
{

/** Simulated virtual/physical address. The simulator uses a flat space. */
using Addr = std::uint64_t;

/** Simulation time expressed in CPU cycles. */
using Cycle = std::uint64_t;

/** Software thread identifier (dense, starting at 0). */
using ThreadId = std::int32_t;

/** Physical core identifier (dense, starting at 0). */
using CoreId = std::int32_t;

/** Sentinel for "no thread". */
constexpr ThreadId invalidThreadId = -1;

/** Cache block size used throughout the system (Table II: 64B blocks). */
constexpr Addr blockBytes = 64;

/** Page size used by the virtual memory subsystem (4KB pages). */
constexpr Addr pageBytes = 4096;

/** Round an address down to its cache-block base. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~(blockBytes - 1);
}

/** Cache block number of an address. */
constexpr Addr
blockNumber(Addr a)
{
    return a / blockBytes;
}

/** Round an address down to its page base. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~(pageBytes - 1);
}

/** Page number of an address. */
constexpr Addr
pageNumber(Addr a)
{
    return a / pageBytes;
}

/** Byte offset of an address within its page. */
constexpr Addr
pageOffset(Addr a)
{
    return a & (pageBytes - 1);
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Kind of a memory access from the pipeline's perspective. */
enum class AccessType : std::uint8_t
{
    Read,
    Write,
};

} // namespace hintm

#endif // HINTM_COMMON_TYPES_HH
