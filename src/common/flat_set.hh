/**
 * @file
 * Open-addressing hash set of addresses, sized for transactional
 * footprints: a power-of-two slot array with linear probing and a
 * multiplicative hash. Compared to std::unordered_set<Addr> there is no
 * per-node allocation and probes stay in one contiguous array, which
 * matters in the simulator's per-access hot path.
 */

#ifndef HINTM_COMMON_FLAT_SET_HH
#define HINTM_COMMON_FLAT_SET_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace hintm
{

/**
 * Insert-only set of Addr keys (block numbers, page numbers, block
 * addresses). clear() keeps the slot array, so a set reused across
 * transactions stops allocating once it has seen the largest footprint.
 * The all-ones address is reserved as the empty-slot sentinel.
 */
class AddrSet
{
  public:
    /** @param initial_slots starting capacity, rounded up to a pow2. */
    explicit AddrSet(std::size_t initial_slots = 64)
    {
        std::size_t cap = 16;
        while (cap < initial_slots)
            cap <<= 1;
        slots_.assign(cap, emptyKey);
    }

    /** @return true when @p a was newly inserted. */
    bool
    insert(Addr a)
    {
        HINTM_ASSERT(a != emptyKey, "reserved key inserted into AddrSet");
        if ((size_ + 1) * 4 > slots_.size() * 3)
            grow();
        Addr *slot = findSlot(a);
        if (*slot == a)
            return false;
        *slot = a;
        ++size_;
        return true;
    }

    bool
    contains(Addr a) const
    {
        return *const_cast<AddrSet *>(this)->findSlot(a) == a;
    }

    /** Drop all keys but keep the slot array. */
    void
    clear()
    {
        if (size_ == 0)
            return;
        std::fill(slots_.begin(), slots_.end(), emptyKey);
        size_ = 0;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /** Visit every key (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Addr a : slots_) {
            if (a != emptyKey)
                fn(a);
        }
    }

  private:
    static constexpr Addr emptyKey = ~Addr(0);

    /** Slot holding @p a, or the empty slot where it would go. */
    Addr *
    findSlot(Addr a)
    {
        const std::size_t mask = slots_.size() - 1;
        // Fibonacci hashing spreads the low-entropy block/page numbers.
        std::size_t i =
            std::size_t(a * 0x9E3779B97F4A7C15ull >> 32) & mask;
        while (slots_[i] != emptyKey && slots_[i] != a)
            i = (i + 1) & mask;
        return &slots_[i];
    }

    void
    grow()
    {
        std::vector<Addr> old = std::move(slots_);
        slots_.assign(old.size() * 2, emptyKey);
        for (const Addr a : old) {
            if (a != emptyKey)
                *findSlot(a) = a;
        }
    }

    std::vector<Addr> slots_;
    std::size_t size_ = 0;
};

} // namespace hintm

#endif // HINTM_COMMON_FLAT_SET_HH
