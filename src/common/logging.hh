/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal/warn/inform
 * convention: panic() marks simulator bugs (aborts), fatal() marks user
 * errors (clean exit), warn()/inform() are non-terminating notices.
 */

#ifndef HINTM_COMMON_LOGGING_HH
#define HINTM_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace hintm
{

namespace detail
{

/** Concatenate a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: something happened that indicates a simulator bug. */
#define HINTM_PANIC(...) \
    ::hintm::detail::panicImpl(__FILE__, __LINE__, \
                               ::hintm::detail::concat(__VA_ARGS__))

/** Exit with a message: the condition is the user's fault (bad config). */
#define HINTM_FATAL(...) \
    ::hintm::detail::fatalImpl(__FILE__, __LINE__, \
                               ::hintm::detail::concat(__VA_ARGS__))

/** panic() if the condition does not hold. */
#define HINTM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::hintm::detail::panicImpl(__FILE__, __LINE__, \
                ::hintm::detail::concat("assertion '" #cond "' failed: ", \
                                        ##__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal warning on stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational message on stdout. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace hintm

#endif // HINTM_COMMON_LOGGING_HH
