/**
 * @file
 * Per-transaction observability journal: a bounded ring of POD records,
 * one per TX attempt (hardware, fallback, or converted), plus exact
 * drop-immune aggregates folded at push time — per-site outcome/abort
 * counters with the hottest offending blocks, and whole-run totals.
 *
 * The journal is strictly observational: the simulation never reads it,
 * so results are bit-identical with it on or off. Memory is bounded by
 * the ring capacity (older records are overwritten and counted as
 * dropped) and by the static number of TX sites in the program; a run
 * can never OOM through the journal.
 *
 * Abort reasons are stored as opaque small integers so this layer stays
 * below the HTM package; the sim layer writes htm::AbortReason values
 * and the exporters (sim/journal_io) map them back to names.
 */

#ifndef HINTM_COMMON_JOURNAL_HH
#define HINTM_COMMON_JOURNAL_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace hintm
{

/** How a TX attempt ended. */
enum class TxOutcome : std::uint8_t
{
    Commit,          ///< hardware TX committed
    Abort,           ///< hardware TX aborted (see TxRecord::reason)
    FallbackCommit,  ///< ran under the software fallback lock
    ConvertedCommit, ///< pre-abort handler converted it mid-flight
};

const char *txOutcomeName(TxOutcome o);

/** One TX attempt. POD so the ring is a flat overwrite-in-place array. */
struct TxRecord
{
    /** Cycle the attempt entered TX mode (begin completes later). */
    Cycle begin = 0;
    /** Cycle the closing event (commit, abort ack, lock release) was
     * handled. */
    Cycle end = 0;
    /** Offending block-aligned address for conflict/capacity aborts
     * (page base address for page-mode aborts); valid when
     * offendingValid. */
    Addr offendingAddr = 0;
    std::uint32_t ctx = 0;
    /** TX site: function/block/instr of the TxBegin (-1 = unknown). */
    std::int32_t fn = -1;
    std::int32_t block = -1;
    std::int32_t instr = -1;
    /** Remote writer's context for conflict aborts (-1 = none/unknown,
     * e.g. capacity). */
    std::int32_t offendingCtx = -1;
    /** Tracked footprint in blocks at close (readset incl. spills /
     * writeset). Zero for pure fallback runs (nothing is tracked). */
    std::uint32_t readBlocks = 0;
    std::uint32_t writeBlocks = 0;
    /** Retry index of this attempt (0 = first try of the site visit). */
    std::uint16_t retry = 0;
    TxOutcome outcome = TxOutcome::Commit;
    /** htm::AbortReason as a small integer; 0 (None) unless Abort. */
    std::uint8_t reason = 0;
    bool offendingValid = false;
};

static_assert(sizeof(TxRecord) <= 64, "TxRecord grew past a cache block");

/** One fixed-cycle window of the interval sampler. */
struct IntervalSample
{
    static constexpr unsigned maxReasons = 8;

    Cycle start = 0;
    /** All committing outcomes (hardware, fallback, converted). */
    std::uint64_t commits = 0;
    std::uint64_t aborts[maxReasons] = {};
    /** Tracked blocks summed over hardware commits in the window. */
    std::uint64_t footprintSum = 0;
    std::uint64_t footprintCount = 0;
    /** Cycles of this window during which the fallback lock was held. */
    Cycle fallbackCycles = 0;

    std::uint64_t
    totalAborts() const
    {
        std::uint64_t n = 0;
        for (auto a : aborts)
            n += a;
        return n;
    }

    double
    meanFootprint() const
    {
        return footprintCount ? double(footprintSum) / footprintCount
                              : 0.0;
    }
};

/**
 * Bounded per-run TX journal. push() is the only mutation: it appends to
 * the ring (overwriting the oldest record when full) and folds the
 * record into the exact aggregates.
 */
class TxJournal
{
  public:
    static constexpr unsigned maxReasons = IntervalSample::maxReasons;
    /** Distinct offending blocks kept per site before saturating. */
    static constexpr unsigned hotBlockCap = 32;

    explicit TxJournal(std::size_t capacity = 1u << 16);

    void push(const TxRecord &r);

    std::size_t capacity() const { return capacity_; }
    /** Records currently retained in the ring. */
    std::size_t size() const;
    /** Records ever pushed (retained + dropped). */
    std::uint64_t pushed() const { return pushed_; }
    /** Records overwritten by ring wrap-around. */
    std::uint64_t dropped() const;

    /** Chronological access to retained records: 0 = oldest. */
    const TxRecord &at(std::size_t i) const;

    /** Exact whole-run totals (never affected by ring drops). */
    struct Totals
    {
        std::uint64_t commits = 0;
        std::uint64_t fallbackCommits = 0;
        std::uint64_t convertedCommits = 0;
        std::uint64_t aborts[maxReasons] = {};
        /** end - begin summed over aborted attempts. */
        std::uint64_t cyclesLostToAborts = 0;

        std::uint64_t
        totalAborts() const
        {
            std::uint64_t n = 0;
            for (auto a : aborts)
                n += a;
            return n;
        }

        std::uint64_t
        committedAttempts() const
        {
            return commits + fallbackCommits + convertedCommits;
        }
    };

    const Totals &totals() const { return totals_; }

    /** One offending block and how often it killed TXs at a site. */
    struct HotBlock
    {
        Addr addr = 0;
        std::uint64_t count = 0;
    };

    /** Exact per-TX-site aggregates (drop-immune). */
    struct SiteStats
    {
        std::int32_t fn = -1;
        std::int32_t block = -1;
        std::int32_t instr = -1;
        std::uint64_t commits = 0;
        std::uint64_t fallbackCommits = 0;
        std::uint64_t convertedCommits = 0;
        std::uint64_t aborts[maxReasons] = {};
        std::uint64_t cyclesLostToAborts = 0;
        /** Tracked blocks summed over hardware commits. */
        std::uint64_t footprintSum = 0;
        /** Hottest offending blocks, saturating at hotBlockCap distinct
         * addresses; overflow lands in otherOffenders. */
        std::vector<HotBlock> hotBlocks;
        std::uint64_t otherOffenders = 0;
        /** The hot-block list hit hotBlockCap: counts beyond the listed
         * addresses landed in otherOffenders, so the per-block ranking
         * is a lower bound for this site. */
        bool hotBlocksSaturated = false;

        std::uint64_t
        totalAborts() const
        {
            std::uint64_t n = 0;
            for (auto a : aborts)
                n += a;
            return n;
        }
    };

    const std::unordered_map<std::uint64_t, SiteStats> &sites() const
    {
        return sites_;
    }

    /** Sites sorted by total aborts (desc), ties broken by site id so
     * the order is deterministic. */
    std::vector<const SiteStats *> sitesByAborts() const;

    /** Sites sorted by cycles lost to aborts (desc), then total aborts
     * (desc), then site id — the cost-ranked view hintm_profile
     * prints: a site with few but long-running aborted attempts
     * outranks one with many cheap ones. */
    std::vector<const SiteStats *> sitesByCyclesLost() const;

    /**
     * Fold the *retained* records into fixed-cycle windows. Windows are
     * attributed by record end cycle; fallback-lock occupancy is the
     * overlap of fallback/converted records with each window. When
     * records were dropped the oldest windows under-count (exact
     * aggregates stay in totals()/sites()).
     */
    std::vector<IntervalSample> sampleIntervals(Cycle window) const;

    /** Function names indexed by TxRecord::fn, for site rendering. The
     * sim layer fills this from the module at machine teardown. */
    void setFunctionNames(std::vector<std::string> names);
    const std::vector<std::string> &functionNames() const
    {
        return fnNames_;
    }

    /** "funcName:block:instr" (or "(unknown)" for fn < 0). */
    std::string siteName(std::int32_t fn, std::int32_t block,
                         std::int32_t instr) const;

  private:
    std::size_t capacity_;
    std::vector<TxRecord> ring_;
    std::uint64_t pushed_ = 0;
    Totals totals_;
    std::unordered_map<std::uint64_t, SiteStats> sites_;
    std::vector<std::string> fnNames_;
};

} // namespace hintm

#endif // HINTM_COMMON_JOURNAL_HH
