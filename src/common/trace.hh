/**
 * @file
 * Lightweight categorized event tracing, in the spirit of gem5's debug
 * flags: disabled categories cost one branch; enabled ones stream
 * "cycle: category: message" lines to a configurable sink. Categories
 * can be switched on programmatically or via the HINTM_TRACE
 * environment variable (comma-separated names, or "all").
 */

#ifndef HINTM_COMMON_TRACE_HH
#define HINTM_COMMON_TRACE_HH

#include <ostream>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace hintm
{
namespace trace
{

/** Trace categories (keep names in category_names in trace.cc). */
enum class Category : unsigned
{
    Tx,      ///< begin / commit / abort / fallback
    Htm,     ///< tracking decisions, conflicts
    Vm,      ///< page transitions, shootdowns, annotations
    Mem,     ///< misses, evictions
    Sched,   ///< context scheduling, barriers
    Journal, ///< TX-journal ring drops and end-of-run flushes
    NumCategories,
};

/** Parse a category name ("tx", "vm", ...); fatal on unknown names,
 * with the error listing every valid name. */
Category categoryFromName(const std::string &name);

/** Enable one category. */
void enable(Category c);

/** Enable from a spec like "tx,vm" or "all" (empty = no-op).
 * Whitespace around commas and names is ignored. */
void enableFromSpec(const std::string &spec);

/** Apply the HINTM_TRACE environment variable (called lazily too). */
void enableFromEnvironment();

/** Disable everything (tests). */
void disableAll();

bool enabled(Category c);

/** Redirect output (default std::cerr); pass nullptr to restore. */
void setSink(std::ostream *os);

namespace detail
{
void emitLine(Category c, Cycle cycle, const std::string &msg);
} // namespace detail

/** Emit one trace line when the category is on. */
template <typename... Args>
void
event(Category c, Cycle cycle, Args &&...args)
{
    if (enabled(c)) {
        detail::emitLine(
            c, cycle,
            hintm::detail::concat(std::forward<Args>(args)...));
    }
}

} // namespace trace
} // namespace hintm

#endif // HINTM_COMMON_TRACE_HH
