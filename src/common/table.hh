/**
 * @file
 * Minimal column-aligned text table used by the benchmark harnesses to print
 * paper-style result rows.
 */

#ifndef HINTM_COMMON_TABLE_HH
#define HINTM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace hintm
{

/** Column-aligned text table. Add a header, then rows; stream to print. */
class TextTable
{
  public:
    /** Set the header row (defines the column count). */
    void header(std::vector<std::string> cells);

    /** Append a data row; short rows are padded with empty cells. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage ("42.0%"). */
    static std::string pct(double fraction, int precision = 1);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

std::ostream &operator<<(std::ostream &os, const TextTable &t);

} // namespace hintm

#endif // HINTM_COMMON_TABLE_HH
