/**
 * @file
 * Capacity-pressure metrics: typed counters, log2-bucket histograms and
 * an adaptive windowed time series, folded into a copyable registry
 * that rides through sim::MachineSnapshot by value.
 *
 * Like the TX journal, the metrics layer is strictly observational: the
 * simulation never reads any of it, so results are bit-identical with
 * it on or off (test-locked). Unlike the journal's per-attempt records,
 * the registry answers capacity questions: how fast read/write sets
 * grow, how full the transactional structures were at each capacity
 * abort, which lines the safe hints kept out of the tracked set, and
 * whether those skips were the difference between fitting and
 * overflowing ("hint-saved" commits).
 *
 * Memory is bounded by construction: histograms are fixed arrays, the
 * time series folds itself down whenever a sample lands past its slot
 * budget, and per-site state is bounded by the static number of TX
 * sites in the program.
 */

#ifndef HINTM_COMMON_METRICS_HH
#define HINTM_COMMON_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/flat_set.hh"
#include "common/types.hh"

namespace hintm
{

/**
 * Fixed-size histogram over power-of-two buckets: bucket 0 holds the
 * value 0, bucket k >= 1 holds [2^(k-1), 2^k). 33 buckets cover the
 * full uint64 range of cycle counts and footprints.
 */
struct Log2Hist
{
    static constexpr unsigned numBuckets = 33;

    std::uint64_t buckets[numBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;

    static unsigned bucketOf(std::uint64_t v);

    void add(std::uint64_t v);

    bool empty() const { return count == 0; }

    double
    mean() const
    {
        return count ? double(sum) / double(count) : 0.0;
    }
};

/**
 * Windowed time series with a bounded slot budget. Samples accumulate
 * into fixed-cycle windows; when an add lands past the last slot the
 * window doubles and adjacent slots fold together, so an arbitrarily
 * long run always fits in maxSlots windows and the result is
 * deterministic for a given sample stream.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(Cycle initial_window = 1024,
                        std::size_t max_slots = 512);

    /** Accumulate @p v into the window containing cycle @p at. */
    void add(Cycle at, std::uint64_t v);

    /** Spread the span [begin, end) over the windows it overlaps,
     * crediting each window with the cycles of overlap (the shape used
     * for lock-occupancy timelines). */
    void addSpan(Cycle begin, Cycle end);

    Cycle window() const { return window_; }
    std::size_t maxSlots() const { return maxSlots_; }
    const std::vector<std::uint64_t> &samples() const { return samples_; }
    bool empty() const { return samples_.empty(); }

  private:
    /** Double-and-fold until cycle @p at maps inside the slot budget. */
    void ensureCovers(Cycle at);

    Cycle window_;
    std::size_t maxSlots_;
    std::vector<std::uint64_t> samples_;
};

/**
 * Insert-only address set with O(1) clear, for per-TX scratch state
 * that is wiped at every attempt begin. Same open-addressing layout as
 * AddrSet, but each slot carries the epoch it was written in: clear()
 * just bumps the epoch, so the begin-of-TX wipe costs nothing instead
 * of an O(capacity) fill. That matters because beginTx runs once per
 * hardware attempt and the slot arrays persist at the size of the
 * largest footprint seen.
 */
class EpochAddrSet
{
  public:
    explicit EpochAddrSet(std::size_t initial_slots = 16)
    {
        std::size_t cap = 16;
        while (cap < initial_slots)
            cap <<= 1;
        slots_.assign(cap, Slot{0, 0});
    }

    /** @return true when @p a was newly inserted this epoch. */
    bool
    insert(Addr a)
    {
        if ((size_ + 1) * 4 > slots_.size() * 3)
            grow();
        Slot *s = findSlot(a);
        if (s->epoch == epoch_)
            return false;
        s->key = a;
        s->epoch = epoch_;
        ++size_;
        return true;
    }

    bool
    contains(Addr a) const
    {
        return const_cast<EpochAddrSet *>(this)->findSlot(a)->epoch ==
               epoch_;
    }

    /** Invalidate every key; O(1). */
    void
    clear()
    {
        ++epoch_;
        size_ = 0;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Visit every live key (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_) {
            if (s.epoch == epoch_)
                fn(s.key);
        }
    }

  private:
    struct Slot
    {
        Addr key;
        std::uint64_t epoch;
    };

    /** Slot holding @p a this epoch, or the free slot where it would
     * go (a slot is free when its epoch is stale). */
    Slot *
    findSlot(Addr a)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i =
            std::size_t(a * 0x9E3779B97F4A7C15ull >> 32) & mask;
        while (slots_[i].epoch == epoch_ && slots_[i].key != a)
            i = (i + 1) & mask;
        return &slots_[i];
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{0, 0});
        for (const Slot &s : old) {
            if (s.epoch == epoch_) {
                Slot *d = findSlot(s.key);
                d->key = s.key;
                d->epoch = epoch_;
            }
        }
    }

    std::vector<Slot> slots_;
    /** Slots start at epoch 0, so 1 means "all empty". */
    std::uint64_t epoch_ = 1;
    std::size_t size_ = 0;
};

/**
 * Per-context scratch state for the transaction currently being
 * measured. Lives in the machine's context state (and its snapshot) so
 * a mid-TX snapshot/restore resumes the measurement exactly.
 */
struct TxMetricsCtx
{
    /** Distinct tracked blocks touched so far, by direction (a block
     * both read and written counts in each). Fed by the controller's
     * newly-tracked bits, so the metrics layer keeps no shadow copy of
     * the footprint — the HTM controller already deduplicates. */
    std::uint32_t readBlocks = 0;
    std::uint32_t writeBlocks = 0;
    /** Distinct blocks excluded from tracking by safe hints. */
    EpochAddrSet skips{16};
    /** Safe-skipped accesses by classification source. */
    std::uint64_t skipStatic = 0;
    std::uint64_t skipDyn = 0;
    std::uint64_t skipAnnot = 0;
    /** Last skipped block — a one-entry memo that short-circuits the
     * set insert for back-to-back skips of the same block (the
     * dominant pattern in the workloads' sequential scans). */
    Addr lastSkip = ~Addr(0);
    Cycle beginCycle = 0;
    /** Fallback-lock acquisition cycle, when lockHeld. */
    Cycle lockAcquiredAt = 0;
    bool lockHeld = false;
    /** A hardware TX attempt is being measured. */
    bool open = false;
    /** Next growth milestone index per direction (see
     * MetricsRegistry::milestoneBlocks). */
    unsigned nextReadMilestone = 0;
    unsigned nextWriteMilestone = 0;
    /** TX site of the open attempt. */
    std::int32_t fn = -1;
    std::int32_t block = -1;
    std::int32_t instr = -1;
};

/**
 * The per-run metrics registry. Copyable by design: snapshots carry it
 * by value, exactly like the journal.
 */
class MetricsRegistry
{
  public:
    /** Growth milestones: 2^0 .. 2^16 distinct tracked blocks. */
    static constexpr unsigned numMilestones = 17;

    static constexpr std::uint64_t
    milestoneBlocks(unsigned k)
    {
        return std::uint64_t(1) << k;
    }

    /** Safe-hint classification source of a skipped access. */
    enum class SkipKind : std::uint8_t
    {
        Static,
        Dynamic,
        Annotation,
    };

    /** Exact per-TX-site capacity/hint aggregates. */
    struct SiteMetrics
    {
        std::int32_t fn = -1;
        std::int32_t block = -1;
        std::int32_t instr = -1;
        /** Hardware commits measured at this site. */
        std::uint64_t commits = 0;
        std::uint64_t capacityAborts = 0;
        /** Safe-skipped accesses by source, over all attempts. */
        std::uint64_t skipStatic = 0;
        std::uint64_t skipDyn = 0;
        std::uint64_t skipAnnot = 0;
        /** Distinct skipped blocks summed over closed attempts ("lines
         * excluded by hints"). */
        std::uint64_t skippedBlocksSum = 0;
        /** Bytes excluded by hints (word-sized accesses: accesses x 8;
         * TxIR has no per-access width, every load/store moves one
         * 8-byte word). */
        std::uint64_t skippedBytes = 0;
        /** Commits whose tracked footprint fit the capacity only
         * because of the skips. */
        std::uint64_t hintSavedCommits = 0;
        /** Peak distinct tracked blocks, summed over commits / max. */
        std::uint64_t peakTrackedSum = 0;
        std::uint64_t peakTrackedMax = 0;
        /** Tracked blocks at capacity-abort time, summed over capacity
         * aborts at this site. */
        std::uint64_t trackedAtCapacitySum = 0;

        std::uint64_t
        skippedAccesses() const
        {
            return skipStatic + skipDyn + skipAnnot;
        }
    };

    // ---- folding (called by the machine) ----------------------------

    /** Start measuring a hardware TX attempt at @p now. */
    void beginTx(TxMetricsCtx &m, Cycle now, std::int32_t fn,
                 std::int32_t block, std::int32_t instr);

    /** The HTM controller newly tracked an access's block in the given
     * direction(s); samples the growth histograms when a milestone is
     * crossed. Inline: this and onSafeSkip run in the per-access hot
     * path, and the counter bump is the whole common case. */
    void
    onTrackedGrowth(TxMetricsCtx &m, bool newly_read, bool newly_written,
                    Cycle now)
    {
        if (newly_read) {
            ++m.readBlocks;
            while (m.nextReadMilestone < numMilestones &&
                   m.readBlocks >=
                       milestoneBlocks(m.nextReadMilestone)) {
                growthRead[m.nextReadMilestone].add(now - m.beginCycle);
                ++m.nextReadMilestone;
            }
        }
        if (newly_written) {
            ++m.writeBlocks;
            while (m.nextWriteMilestone < numMilestones &&
                   m.writeBlocks >=
                       milestoneBlocks(m.nextWriteMilestone)) {
                growthWrite[m.nextWriteMilestone].add(now -
                                                      m.beginCycle);
                ++m.nextWriteMilestone;
            }
        }
    }

    /** A safe-hinted access to @p block_addr skipped tracking. */
    void
    onSafeSkip(TxMetricsCtx &m, Addr block_addr, SkipKind kind)
    {
        switch (kind) {
          case SkipKind::Static:
            ++m.skipStatic;
            break;
          case SkipKind::Dynamic:
            ++m.skipDyn;
            break;
          case SkipKind::Annotation:
            ++m.skipAnnot;
            break;
        }
        if (block_addr == m.lastSkip)
            return;
        m.lastSkip = block_addr;
        m.skips.insert(block_addr);
    }

    /** Close the open attempt as a hardware commit. @p hint_saved is
     * the caller's capacity-model verdict (the model needs the HTM
     * geometry, which lives above this layer). */
    void closeCommit(TxMetricsCtx &m, bool hint_saved);

    /** Close the open attempt as a capacity abort with @p tracked
     * blocks in the transactional structures. */
    void closeCapacityAbort(TxMetricsCtx &m, std::uint64_t tracked);

    /** Close the open attempt for any other outcome (conflict abort,
     * conversion, ...): hint-exclusion accounting still folds. */
    void closeOther(TxMetricsCtx &m);

    /** One valid line of the overflowing cache set, classified. */
    void recordOverflowLine(bool tracked, bool safe_skipped);
    /** One overflowing-set scan completed (normalizes the line mix). */
    void recordOverflowScan() { ++ovScans; }

    // ---- lookup / export --------------------------------------------

    SiteMetrics &site(std::int32_t fn, std::int32_t block,
                      std::int32_t instr);

    /** Keyed by packed site id; std::map so export order is
     * deterministic. */
    const std::map<std::uint64_t, SiteMetrics> &sites() const
    {
        return sites_;
    }

    /** Sites sorted by capacity pressure: capacity aborts desc, then
     * peak tracked footprint desc, then site id. */
    std::vector<const SiteMetrics *> sitesByPressure() const;

    void setFunctionNames(std::vector<std::string> names);
    const std::vector<std::string> &functionNames() const
    {
        return fnNames_;
    }
    std::string siteName(std::int32_t fn, std::int32_t block,
                         std::int32_t instr) const;

    // ---- NUMA traffic matrix ----------------------------------------

    /** Size the node x node matrix (idempotent for the same count). */
    void initNuma(unsigned nodes);
    unsigned numaNodes() const { return numaNodes_; }

    /** Cell [from][to]; inline and unchecked — this runs once per bus
     * transaction, and the node ids come from the memory system's own
     * tables. */
    std::uint64_t &
    numaTraffic(unsigned from, unsigned to)
    {
        return numaMatrix_[std::size_t(from) * numaNodes_ + to];
    }
    const std::vector<std::uint64_t> &numaMatrix() const
    {
        return numaMatrix_;
    }

    // ---- global aggregates (public, POD-copyable) -------------------

    /** Cycles-from-begin at which the read/write set reached milestone
     * 2^k distinct blocks, per milestone k. */
    Log2Hist growthRead[numMilestones];
    Log2Hist growthWrite[numMilestones];
    /** Peer-sharer count, sampled at every sharerSampleEvery-th bus
     * transaction (probing every peer L1 per transaction is too hot
     * for a full census; the decimation counter lives here so the
     * sampling phase survives snapshot/restore). */
    Log2Hist sharersAtBus;
    static constexpr std::uint64_t sharerSampleEvery = 16;
    std::uint64_t busEvents = 0;
    /** Tracked blocks at each capacity abort. */
    Log2Hist trackedAtCapacityAbort;
    /** Peak distinct tracked blocks at each hardware commit. */
    Log2Hist trackedAtCommit;
    /** Occupancy of the overflowing cache set at capacity aborts. */
    std::uint64_t ovScans = 0;
    std::uint64_t ovTracked = 0;
    std::uint64_t ovSafeSkipped = 0;
    std::uint64_t ovOther = 0;
    /** Fallback-lock occupancy timeline (held cycles per window). */
    TimeSeries fallbackSeries;
    std::uint64_t fallbackAcquisitions = 0;
    /** Whole-run skip totals by source. */
    std::uint64_t skipStaticAccesses = 0;
    std::uint64_t skipDynAccesses = 0;
    std::uint64_t skipAnnotAccesses = 0;
    std::uint64_t hintSavedCommits = 0;
    std::uint64_t capacityAborts = 0;

  private:
    std::map<std::uint64_t, SiteMetrics> sites_;
    std::vector<std::string> fnNames_;
    unsigned numaNodes_ = 0;
    std::vector<std::uint64_t> numaMatrix_;
};

} // namespace hintm

#endif // HINTM_COMMON_METRICS_HH
