#include "parallel.hh"

#include "common/logging.hh"

namespace hintm
{

unsigned
ThreadPool::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkers();
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    HINTM_ASSERT(task != nullptr, "null task submitted");
    {
        std::lock_guard<std::mutex> lock(mu_);
        HINTM_ASSERT(!stopping_, "submit on a stopping pool");
        queue_.push_back(std::move(task));
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock,
                  [this] { return queue_.empty() && running_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        taskReady_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) // stopping_ and drained
            return;
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
        lock.unlock();
        try {
            task();
        } catch (...) {
            lock.lock();
            if (!firstError_)
                firstError_ = std::current_exception();
            lock.unlock();
        }
        lock.lock();
        --running_;
        if (queue_.empty() && running_ == 0)
            allDone_.notify_all();
    }
}

void
parallelFor(unsigned workers, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace hintm
