#include "stats.hh"

#include <algorithm>

namespace hintm
{
namespace stats
{

Distribution::Distribution(std::uint64_t bucket_width,
                           std::size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    HINTM_ASSERT(bucket_width >= 1, "bucket width must be positive");
    HINTM_ASSERT(num_buckets >= 1, "need at least one bucket");
}

void
Distribution::sample(std::uint64_t v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    const std::size_t idx = v / bucketWidth_;
    if (idx < buckets_.size())
        ++buckets_[idx];
    else
        ++overflow_;
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t(0);
    max_ = 0;
}

double
Distribution::cdfAt(std::uint64_t v) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t upper = (i + 1) * bucketWidth_ - 1;
        if (upper > v)
            break;
        acc += buckets_[i];
    }
    return double(acc) / count_;
}

std::uint64_t
Distribution::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    const std::uint64_t target =
        std::uint64_t(q * count_ + 0.5);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        acc += buckets_[i];
        if (acc >= target)
            return (i + 1) * bucketWidth_ - 1;
    }
    return max_;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Distribution &
StatGroup::distribution(const std::string &name, std::uint64_t bucket_width,
                        std::size_t num_buckets)
{
    auto it = distributions_.find(name);
    if (it == distributions_.end()) {
        it = distributions_
                 .emplace(name, Distribution(bucket_width, num_buckets))
                 .first;
    }
    return it->second;
}

StatGroup::Values
StatGroup::values() const
{
    Values v;
    v.counters = counters_;
    for (const auto &kv : distributions_)
        v.distributions.emplace(kv.first, kv.second.image());
    return v;
}

void
StatGroup::setValues(const Values &v)
{
    for (const auto &kv : v.counters) {
        const auto it = counters_.find(kv.first);
        HINTM_ASSERT(it != counters_.end(), "setValues: unknown counter ",
                     name_, ".", kv.first);
        it->second = kv.second;
    }
    for (const auto &kv : v.distributions) {
        const auto it = distributions_.find(kv.first);
        HINTM_ASSERT(it != distributions_.end(),
                     "setValues: unknown distribution ", name_, ".",
                     kv.first);
        it->second.setImage(kv.second);
    }
}

void
StatGroup::addChild(StatGroup *child)
{
    HINTM_ASSERT(child != nullptr, "null child group");
    children_.push_back(child);
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : distributions_)
        kv.second.reset();
    for (auto *child : children_)
        child->reset();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &kv : counters_)
        os << full << "." << kv.first << " " << kv.second.value() << "\n";
    for (const auto &kv : distributions_) {
        const auto &d = kv.second;
        os << full << "." << kv.first << ".count " << d.count() << "\n";
        os << full << "." << kv.first << ".mean " << d.mean() << "\n";
        os << full << "." << kv.first << ".max " << d.max() << "\n";
    }
    for (const auto *child : children_)
        child->dump(os, full);
}

} // namespace stats
} // namespace hintm
