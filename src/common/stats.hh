/**
 * @file
 * Lightweight statistics package: named scalar counters, distributions and
 * histograms grouped into StatGroups, with a plain-text table dumper. The
 * design follows gem5's stats package in spirit, sized for this simulator.
 */

#ifndef HINTM_COMMON_STATS_HH
#define HINTM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "logging.hh"

namespace hintm
{
namespace stats
{

/** Monotonic scalar statistic. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Sample distribution tracking count/sum/min/max plus a fixed-width bucket
 * histogram; supports quantile queries and CDF export for Fig. 6-style
 * plots.
 */
class Distribution
{
  public:
    /**
     * @param bucket_width width of each histogram bucket (>=1)
     * @param num_buckets number of buckets before the overflow bucket
     */
    explicit Distribution(std::uint64_t bucket_width = 1,
                          std::size_t num_buckets = 128);

    void sample(std::uint64_t v);
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const { return count_ ? double(sum_) / count_ : 0.0; }

    /** Fraction of samples with value <= v (exact for bucket boundaries). */
    double cdfAt(std::uint64_t v) const;

    /** Smallest bucket upper bound b such that cdfAt(b) >= q. */
    std::uint64_t quantile(double q) const;

    std::uint64_t bucketWidth() const { return bucketWidth_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Exact internal state, including the raw min sentinel (~0 when the
     * distribution is empty, which the min() accessor masks). Used by the
     * machine snapshot machinery, which needs bit-identical restores.
     */
    struct Image
    {
        std::uint64_t bucketWidth = 1;
        std::vector<std::uint64_t> buckets;
        std::uint64_t overflow = 0;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t minRaw = ~std::uint64_t(0);
        std::uint64_t max = 0;
    };

    Image image() const
    {
        return {bucketWidth_, buckets_, overflow_, count_, sum_, min_,
                max_};
    }

    void setImage(const Image &img)
    {
        bucketWidth_ = img.bucketWidth;
        buckets_ = img.buckets;
        overflow_ = img.overflow;
        count_ = img.count;
        sum_ = img.sum;
        min_ = img.minRaw;
        max_ = img.max;
    }

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/**
 * A named collection of statistics. Groups may nest; dump() walks the tree
 * and prints "group.name value" lines, gem5-stats style.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register (or fetch) a named counter. */
    Counter &counter(const std::string &name);

    /** Register (or fetch) a named distribution. */
    Distribution &distribution(const std::string &name,
                               std::uint64_t bucket_width = 1,
                               std::size_t num_buckets = 128);

    /** Attach a child group; the pointer stays owned by the caller. */
    void addChild(StatGroup *child);

    /** Reset every statistic in this group and its children. */
    void reset();

    /** Dump all statistics as "prefix.name value" lines. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::string &name() const { return name_; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    /**
     * Value-only snapshot of this group's own statistics (children are
     * not included; snapshot callers walk the tree themselves).
     */
    struct Values
    {
        std::map<std::string, Counter> counters;
        std::map<std::string, Distribution::Image> distributions;
    };

    Values values() const;

    /**
     * Restore previously captured values. Every key must already be
     * registered: values are assigned into the existing map nodes so
     * that cached Counter/Distribution pointers held by hot paths stay
     * valid across a restore.
     */
    void setValues(const Values &v);

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
    std::vector<StatGroup *> children_;
};

} // namespace stats
} // namespace hintm

#endif // HINTM_COMMON_STATS_HH
