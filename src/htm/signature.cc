#include "signature.hh"

#include "common/logging.hh"

namespace hintm
{
namespace htm
{

Signature::Signature(unsigned bits, unsigned num_hashes)
    : bits_(bits), indexBits_(log2i(bits)), numHashes_(num_hashes),
      words_((bits + 63) / 64, 0)
{
    HINTM_ASSERT(isPowerOfTwo(bits), "signature width must be pow2");
    HINTM_ASSERT(num_hashes >= 1, "need at least one hash");
}

unsigned
Signature::hash(Addr block_addr, unsigned which) const
{
    // PBX: XOR the low (block) bit-field with a higher (page) bit-field.
    // Different hash functions pick page fields at different offsets so
    // that a stride aliasing one function rarely aliases the others.
    const std::uint64_t line = block_addr >> log2i(blockBytes);
    const std::uint64_t low = line & (bits_ - 1);
    const std::uint64_t high =
        (line >> (indexBits_ + which * 3)) & (bits_ - 1);
    return unsigned(low ^ high);
}

void
Signature::insert(Addr block_addr)
{
    for (unsigned h = 0; h < numHashes_; ++h) {
        const unsigned idx = hash(block_addr, h);
        std::uint64_t &word = words_[idx / 64];
        const std::uint64_t mask = std::uint64_t(1) << (idx % 64);
        if (!(word & mask)) {
            word |= mask;
            ++popcount_;
        }
    }
}

bool
Signature::test(Addr block_addr) const
{
    // Parallel-Bloom organization: the address must hit under every hash.
    for (unsigned h = 0; h < numHashes_; ++h) {
        const unsigned idx = hash(block_addr, h);
        if (!(words_[idx / 64] & (std::uint64_t(1) << (idx % 64))))
            return false;
    }
    return popcount_ != 0;
}

void
Signature::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
    popcount_ = 0;
}

double
Signature::occupancy() const
{
    return double(popcount_) / bits_;
}

} // namespace htm
} // namespace hintm
