/**
 * @file
 * Hardware read-signature for the P8S configuration: readset addresses
 * spilled from the transactional buffer are hashed into a fixed-size
 * bitvector (the paper models state-of-the-art PBX hashing with a 1kbit
 * vector [71]). Membership tests may alias, producing false conflicts.
 */

#ifndef HINTM_HTM_SIGNATURE_HH
#define HINTM_HTM_SIGNATURE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hintm
{
namespace htm
{

/**
 * PBX (page-block XOR) signature. Each hash function partitions the block
 * address into two bit fields — low "block" bits and higher "page" bits —
 * and XORs them to form an index, decorrelating the strides that defeat
 * plain bit-selection hashes.
 */
class Signature
{
  public:
    /**
     * @param bits bitvector width (power of two, paper default 1024)
     * @param num_hashes parallel hash functions (paper-style PBX uses 2)
     */
    explicit Signature(unsigned bits = 1024, unsigned num_hashes = 2);

    /** Hash a block address into the bitvector. */
    void insert(Addr block_addr);

    /** Membership test; may return true for never-inserted addresses. */
    bool test(Addr block_addr) const;

    /** Reset to empty (TX commit/abort). */
    void clear();

    bool empty() const { return popcount_ == 0; }
    unsigned bits() const { return bits_; }

    /** Fraction of set bits — a proxy for expected false-positive rate. */
    double occupancy() const;

  private:
    unsigned hash(Addr block_addr, unsigned which) const;

    unsigned bits_;
    unsigned indexBits_;
    unsigned numHashes_;
    std::vector<std::uint64_t> words_;
    unsigned popcount_ = 0;
};

} // namespace htm
} // namespace hintm

#endif // HINTM_HTM_SIGNATURE_HH
