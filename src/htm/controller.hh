/**
 * @file
 * The per-hardware-context HTM controller. Implements eager,
 * coherence-based conflict detection for four baseline configurations
 * (§V): P8 (64-entry dedicated buffer), P8S (P8 + read signature), L1TM
 * (tracking in the L1 data cache) and InfCap (unbounded). HinTM's safety
 * hints arrive as a per-access flag: safe accesses skip all tracking.
 */

#ifndef HINTM_HTM_CONTROLLER_HH
#define HINTM_HTM_CONTROLLER_HH

#include <functional>

#include "common/flat_set.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "htm/abort.hh"
#include "htm/signature.hh"
#include "htm/tx_buffer.hh"
#include "mem/snoop_listener.hh"

namespace hintm
{
namespace mem
{
class Directory;
}

namespace htm
{

class HintOracle;

/** Baseline HTM hardware organization. */
enum class HtmKind : std::uint8_t
{
    P8,     ///< dedicated 64-entry fully-associative TX buffer (POWER8)
    P8S,    ///< P8 plus a read signature for readset overflow
    L1TM,   ///< transactional state tracked in the L1 data cache
    InfCap, ///< unbounded tracking (capacity-ideal upper bound)
};

const char *htmKindName(HtmKind k);

/** Who loses an eager conflict between two hardware TXs. */
enum class ConflictPolicy : std::uint8_t
{
    /** The TX receiving the conflicting coherence message aborts
     * (POWER8-style; the default everywhere in the paper). */
    AttackerWins,
    /** The requesting TX aborts itself before disturbing the holder
     * (Blue Gene/Q-flavored requester-fails). Non-transactional
     * requesters still win. */
    RequesterLoses,
};

const char *conflictPolicyName(ConflictPolicy p);

/** HTM hardware parameters. */
struct HtmConfig
{
    HtmKind kind = HtmKind::P8;
    unsigned bufferEntries = 64;
    unsigned signatureBits = 1024;
    unsigned signatureHashes = 2;
    Cycle beginCycles = 5;
    Cycle commitCycles = 10;
    /** Architectural-restore cost charged on every abort. */
    Cycle abortHandlerCycles = 50;
    /** Pre-abort handler [51]: a capacity overflow raises
     * capacityPending() instead of aborting, giving the runtime a
     * chance to convert the TX into a lock-protected critical section
     * without losing its work. */
    bool preAbortHandler = false;
    /** Conflict-loser selection (ablation axis; paper = AttackerWins). */
    ConflictPolicy conflictPolicy = ConflictPolicy::AttackerWins;
};

/** System-wide HTM statistics, shared by all controllers. */
struct HtmStats
{
    std::uint64_t begins = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts[numAbortReasons] = {};
    /** TX cycles thrown away per abort reason. */
    std::uint64_t cyclesLost[numAbortReasons] = {};
    /** Tracked (unsafe) blocks at commit time. */
    stats::Distribution trackedAtCommit{1, 4096};
    /** Read signature spills (P8S). */
    std::uint64_t signatureSpills = 0;
    /** Capacity overflows converted into critical sections (pre-abort
     * handler) instead of aborting. */
    std::uint64_t preAbortConversions = 0;

    std::uint64_t
    totalAborts() const
    {
        std::uint64_t n = 0;
        for (auto a : aborts)
            n += a;
        return n;
    }
};

/**
 * One controller per hardware thread context. The sim layer drives
 * begin/track/commit; the memory system drives the SnoopListener side.
 */
class HtmController : public mem::SnoopListener
{
  public:
    HtmController(const HtmConfig &cfg, mem::ContextId self,
                  HtmStats *sys_stats);

    /**
     * Hook invoked exactly once when an abort fires, before any other
     * context's access completes: must functionally undo the TX's stores.
     */
    void setUndoHook(std::function<void()> hook) { undoHook_ = hook; }

    /**
     * Attach the dynamic hint oracle (may be null). The controller only
     * reports safe-skip events to it; all shadow tracking happens on the
     * oracle's MemorySystem observer side.
     */
    void setHintOracle(HintOracle *oracle) { oracle_ = oracle; }

    /**
     * Attach the owning coherence directory (null = broadcast mode).
     * The controller then registers every precisely-tracked block (and
     * its signature liveness) with the directory, letting the memory
     * system deliver bus events only to contexts that can conflict.
     */
    void attachDirectory(mem::Directory *dir) { dir_ = dir; }

    /**
     * Hook publishing whether this controller currently needs coherence
     * events (it does exactly while in an un-aborted TX — see the early
     * returns in onRemoteAccess/onEviction). The memory system uses it to
     * skip listener delivery for uninterested contexts. Invoked once
     * immediately with the current state, then on every transition.
     */
    void setInterestHook(std::function<void(bool)> hook);

    /**
     * Hook fired whenever this controller signals an abort into a
     * running TX (conflicts, evictions, fallback-lock handoff,
     * page-mode aborts — every triggerAbort() path). The scheduler
     * uses it as a wake event: the owning context's retry timing is
     * about to change, so any batched scheduling decision made under a
     * quiet-machine assumption must be revisited. May be null.
     */
    void setWakeHook(std::function<void()> hook)
    {
        wakeHook_ = std::move(hook);
    }

    /** Enter transactional mode. */
    void beginTx(Cycle now);

    /**
     * Record one transactional access. Safe accesses (@p safe) skip
     * tracking entirely. May trigger a capacity abort; check
     * abortPending() afterwards — when pending, the access must not be
     * performed architecturally.
     * @return the TxBuffer NewlyRead/NewlyWritten bits this access
     * newly tracked (zero when it was safe-skipped, untracked, or
     * overflowed). Lets observers count distinct footprint growth
     * without shadowing the read/write sets.
     */
    std::uint8_t trackAccess(Addr addr, AccessType type, bool safe);

    /** Remember that this TX read @p page_num under a dynamic-safe hint. */
    void noteSafePageRead(Addr page_num);

    /** Commit: publish (drop tracking) and account statistics. */
    void commitTx(Cycle now);

    /**
     * Thread-side acknowledgement of a pending abort: accounts lost
     * cycles, clears tracking state, leaves TX mode.
     * @return the abort reason (for the retry policy).
     */
    AbortReason acknowledgeAbort(Cycle now);

    /** A page this TX may have read as safe turned unsafe. */
    void onPageBecameUnsafe(Addr page_num);

    /** External abort request (e.g. fallback-lock acquisition).
     * @p offender optionally names the context responsible (journal
     * attribution; -1 = unknown). */
    void requestAbort(AbortReason r, std::int32_t offender = -1)
    {
        triggerAbort(r, 0, false, offender);
    }

    /** Pre-abort handler: a capacity overflow awaits a runtime decision
     * (only raised when config().preAbortHandler). */
    bool capacityPending() const { return capacityPending_; }

    /**
     * Pre-abort conversion: the runtime acquired the fallback lock, so
     * this TX continues as a critical section. Tracking state is
     * dropped without any rollback; the TX is no longer hardware-
     * monitored. The overflowing access may then be (re-)performed.
     */
    void convertToCriticalSection();

    /** Pre-abort conversion impossible (lock held): abort normally. */
    void declineConversion();

    // SnoopListener interface.
    void onRemoteAccess(Addr block_addr, AccessType type,
                        mem::ContextId requester) override;
    void onEviction(Addr block_addr, bool dirty) override;

    bool inTx() const { return inTx_; }
    bool abortPending() const { return abortPending_; }
    AbortReason pendingReason() const { return pendingReason_; }
    Cycle txStartCycle() const { return txStart_; }

    // Abort attribution (journal observability). Captured at the point
    // the abort is signalled; valid from then until the next abort.
    /** Offending block-aligned address (page base for page-mode);
     * meaningful only when lastAbortAddrValid(). */
    Addr lastAbortAddr() const { return lastAbortAddr_; }
    bool lastAbortAddrValid() const { return lastAbortAddrValid_; }
    /** Context whose access killed the TX (-1 = none/unknown). */
    std::int32_t lastAbortCtx() const { return lastAbortCtx_; }

    /** Distinct tracked (unsafe) blocks in the current TX. */
    std::size_t trackedBlocks() const;

    /** Readset blocks (precise buffer reads + signature spills). */
    std::size_t readSetBlocks() const;
    /** Writeset blocks. */
    std::size_t writeSetBlocks() const;

    /** True when @p block_addr is in the precise readset. */
    bool readsBlock(Addr block_addr) const;
    /** True when @p block_addr is in the precise writeset. */
    bool writesBlock(Addr block_addr) const;

    /** Visit every tracked block: buffer entries, then spilled reads.
     * A P8S block spilled as a read and later re-buffered by a write
     * is visited twice; on L1TM/P8 (no spills) each block is visited
     * exactly once. Observational (metrics capacity model). */
    template <typename Fn>
    void
    forEachTrackedBlock(Fn &&fn) const
    {
        for (const auto &kv : buffer_.entries())
            fn(kv.first);
        overflowReads_.forEach(fn);
    }

    /** Would a remote access of @p type to @p block_addr conflict with
     * this TX's tracked state? (Requester-loses pre-flight check; does
     * not count signature aliasing — a requester cannot see those.) */
    bool conflictsWith(Addr block_addr, AccessType type) const;

    const HtmConfig &config() const { return cfg_; }

    /**
     * Complete per-controller transactional state. System-wide HtmStats
     * live in RunResult and are captured by the machine snapshot, not
     * here; hooks and the oracle attachment are identity, not state.
     */
    struct State
    {
        bool inTx = false;
        bool abortPending = false;
        bool capacityPending = false;
        AbortReason pendingReason = AbortReason::None;
        Cycle txStart = 0;
        Addr lastAbortAddr = 0;
        bool lastAbortAddrValid = false;
        std::int32_t lastAbortCtx = -1;
        Addr capacityPendingBlock = 0;
        TxBuffer buffer{0};
        AddrSet overflowReads;
        Signature signature;
        AddrSet safePages;
    };

    State saveState() const;

    /** Restore state and re-publish listener interest (the memory
     * system's interest mask is rebuilt from the controllers). */
    void loadState(const State &s);

  private:
    void triggerAbort(AbortReason r)
    {
        triggerAbort(r, 0, false, -1);
    }
    void triggerAbort(AbortReason r, Addr offending_addr,
                      bool addr_valid, std::int32_t offender);
    void clearTxState();
    void publishInterest();

    HtmConfig cfg_;
    mem::ContextId self_;
    HtmStats *stats_;
    std::function<void()> undoHook_;
    std::function<void(bool)> interestHook_;
    std::function<void()> wakeHook_;
    HintOracle *oracle_ = nullptr;
    mem::Directory *dir_ = nullptr;

    bool inTx_ = false;
    bool abortPending_ = false;
    bool capacityPending_ = false;
    AbortReason pendingReason_ = AbortReason::None;
    Cycle txStart_ = 0;
    Addr lastAbortAddr_ = 0;
    bool lastAbortAddrValid_ = false;
    std::int32_t lastAbortCtx_ = -1;
    /** Block that raised a pending pre-abort capacity overflow. */
    Addr capacityPendingBlock_ = 0;

    /** Precise tracking structure. For P8/P8S this is the dedicated
     * buffer (bounded); for L1TM/InfCap an unbounded shadow of the
     * tracked state. */
    TxBuffer buffer_;
    /** P8S: readset blocks spilled past the buffer, summarized in the
     * signature; kept precisely here to tell false from true conflicts. */
    AddrSet overflowReads_;
    Signature signature_;
    /** Pages read under a dynamic safety hint during this TX. */
    AddrSet safePages_;
};

} // namespace htm
} // namespace hintm

#endif // HINTM_HTM_CONTROLLER_HH
