#include "controller.hh"

#include <limits>

#include "common/logging.hh"
#include "htm/hint_oracle.hh"
#include "mem/directory.hh"

namespace hintm
{
namespace htm
{

const char *
abortReasonName(AbortReason r)
{
    switch (r) {
      case AbortReason::None: return "none";
      case AbortReason::Conflict: return "conflict";
      case AbortReason::FalseConflict: return "false-conflict";
      case AbortReason::Capacity: return "capacity";
      case AbortReason::PageMode: return "page-mode";
      case AbortReason::FallbackLock: return "fallback-lock";
    }
    return "?";
}

const char *
conflictPolicyName(ConflictPolicy p)
{
    switch (p) {
      case ConflictPolicy::AttackerWins: return "attacker-wins";
      case ConflictPolicy::RequesterLoses: return "requester-loses";
    }
    return "?";
}

const char *
htmKindName(HtmKind k)
{
    switch (k) {
      case HtmKind::P8: return "P8";
      case HtmKind::P8S: return "P8S";
      case HtmKind::L1TM: return "L1TM";
      case HtmKind::InfCap: return "InfCap";
    }
    return "?";
}

namespace
{

/** Buffer capacity by kind: bounded only for the dedicated-buffer HTMs. */
unsigned
effectiveBufferEntries(const HtmConfig &cfg)
{
    switch (cfg.kind) {
      case HtmKind::P8:
      case HtmKind::P8S:
        return cfg.bufferEntries;
      case HtmKind::L1TM:
      case HtmKind::InfCap:
        return std::numeric_limits<unsigned>::max();
    }
    return cfg.bufferEntries;
}

} // namespace

HtmController::HtmController(const HtmConfig &cfg, mem::ContextId self,
                             HtmStats *sys_stats)
    : cfg_(cfg), self_(self), stats_(sys_stats),
      buffer_(effectiveBufferEntries(cfg)),
      signature_(cfg.signatureBits, cfg.signatureHashes)
{
    HINTM_ASSERT(sys_stats != nullptr, "controller needs a stats sink");
}

void
HtmController::setInterestHook(std::function<void(bool)> hook)
{
    interestHook_ = std::move(hook);
    publishInterest();
}

void
HtmController::publishInterest()
{
    if (interestHook_)
        interestHook_(inTx_ && !abortPending_);
}

void
HtmController::beginTx(Cycle now)
{
    HINTM_ASSERT(!inTx_, "nested TX begin on context ", self_);
    HINTM_ASSERT(!abortPending_, "begin with unacknowledged abort");
    inTx_ = true;
    txStart_ = now;
    ++stats_->begins;
    publishInterest();
}

std::uint8_t
HtmController::trackAccess(Addr addr, AccessType type, bool safe)
{
    if (!inTx_ || abortPending_)
        return TrackFailed;
    if (safe) {
        // The whole point of HinTM: safe accesses consume no tracking
        // resources and may spill from caches freely.
        if (oracle_)
            oracle_->onSafeSkip();
        return TrackFailed;
    }
    const Addr block = blockAlign(addr);

    if (const std::uint8_t tr = buffer_.track(block, type)) {
        if (dir_)
            dir_->txTrack(block, unsigned(self_));
        return tr & (NewlyRead | NewlyWritten);
    }

    // Buffer exhausted.
    if (cfg_.kind == HtmKind::P8S) {
        if (type == AccessType::Read) {
            // Reads spill into the signature instead of aborting.
            signature_.insert(block);
            const bool is_new = overflowReads_.insert(block);
            if (dir_) {
                dir_->txTrack(block, unsigned(self_));
                dir_->setSigActive(unsigned(self_), true);
            }
            ++stats_->signatureSpills;
            return is_new ? std::uint8_t(NewlyRead) : TrackFailed;
        }
        // Writes need real buffering: displace a read-only entry into
        // the signature to make room. Only a full buffer of written
        // blocks is a true (writeset) capacity overflow.
        const Addr victim = buffer_.findReadOnlyVictim();
        if (victim != ~Addr(0)) {
            // The victim moves to overflowReads_, so its directory
            // tracker registration stays valid.
            buffer_.erase(victim);
            signature_.insert(victim);
            overflowReads_.insert(victim);
            ++stats_->signatureSpills;
            const std::uint8_t tr = buffer_.track(block, type);
            HINTM_ASSERT(tr, "buffer still full after displacement");
            if (dir_) {
                dir_->txTrack(block, unsigned(self_));
                dir_->setSigActive(unsigned(self_), true);
            }
            return tr & (NewlyRead | NewlyWritten);
        }
    }
    if (cfg_.preAbortHandler) {
        // Defer: the runtime decides between conversion and abort.
        capacityPending_ = true;
        capacityPendingBlock_ = block;
        return TrackFailed;
    }
    triggerAbort(AbortReason::Capacity, block, true, -1);
    return TrackFailed;
}

void
HtmController::noteSafePageRead(Addr page_num)
{
    if (inTx_ && !abortPending_)
        safePages_.insert(page_num);
}

void
HtmController::commitTx(Cycle now)
{
    (void)now;
    HINTM_ASSERT(inTx_, "commit outside TX on context ", self_);
    HINTM_ASSERT(!abortPending_, "commit with pending abort");
    ++stats_->commits;
    stats_->trackedAtCommit.sample(trackedBlocks());
    clearTxState();
}

AbortReason
HtmController::acknowledgeAbort(Cycle now)
{
    HINTM_ASSERT(abortPending_, "acknowledging without pending abort");
    const AbortReason r = pendingReason_;
    ++stats_->aborts[unsigned(r)];
    stats_->cyclesLost[unsigned(r)] +=
        (now - txStart_) + cfg_.abortHandlerCycles;
    clearTxState();
    return r;
}

void
HtmController::convertToCriticalSection()
{
    HINTM_ASSERT(capacityPending_, "no pending capacity overflow");
    HINTM_ASSERT(inTx_ && !abortPending_, "conversion in bad state");
    ++stats_->preAbortConversions;
    // The TX's effects so far stand (the lock serializes everyone
    // else); hardware monitoring simply stops.
    clearTxState();
}

void
HtmController::declineConversion()
{
    HINTM_ASSERT(capacityPending_, "no pending capacity overflow");
    capacityPending_ = false;
    triggerAbort(AbortReason::Capacity, capacityPendingBlock_, true, -1);
}

void
HtmController::onPageBecameUnsafe(Addr page_num)
{
    if (!inTx_ || abortPending_)
        return;
    if (safePages_.contains(page_num)) {
        // Untracked (safe) reads to this page can no longer be trusted:
        // conservatively abort (§III-B).
        triggerAbort(AbortReason::PageMode, page_num * pageBytes, true,
                     -1);
    }
}

void
HtmController::onRemoteAccess(Addr block_addr, AccessType type,
                              mem::ContextId requester)
{
    if (!inTx_ || abortPending_)
        return;

    const TxBufferEntry *e = buffer_.find(block_addr);
    const bool in_read =
        (e && e->read) || overflowReads_.contains(block_addr);
    const bool in_write = e && e->written;

    if (type == AccessType::Write) {
        if (in_read || in_write) {
            triggerAbort(AbortReason::Conflict, block_addr, true,
                         std::int32_t(requester));
        } else if (cfg_.kind == HtmKind::P8S &&
                   signature_.test(block_addr)) {
            // Aliased hit in the summarizing bitvector only.
            triggerAbort(AbortReason::FalseConflict, block_addr, true,
                         std::int32_t(requester));
        }
    } else {
        if (in_write)
            triggerAbort(AbortReason::Conflict, block_addr, true,
                         std::int32_t(requester));
    }
}

void
HtmController::onEviction(Addr block_addr, bool dirty)
{
    (void)dirty;
    if (!inTx_ || abortPending_ || cfg_.kind != HtmKind::L1TM)
        return;
    // L1TM keeps transactional state in L1 lines: displacing a tracked
    // line (capacity or set conflict, including SMT-sibling pressure)
    // loses it, so the TX must abort.
    if (buffer_.find(block_addr))
        triggerAbort(AbortReason::Capacity, block_addr, true, -1);
}

std::size_t
HtmController::trackedBlocks() const
{
    return buffer_.size() + overflowReads_.size();
}

std::size_t
HtmController::readSetBlocks() const
{
    std::size_t n = overflowReads_.size();
    for (const auto &kv : buffer_.entries()) {
        if (kv.second.read)
            ++n;
    }
    return n;
}

std::size_t
HtmController::writeSetBlocks() const
{
    std::size_t n = 0;
    for (const auto &kv : buffer_.entries()) {
        if (kv.second.written)
            ++n;
    }
    return n;
}

bool
HtmController::readsBlock(Addr block_addr) const
{
    const TxBufferEntry *e = buffer_.find(block_addr);
    return (e && e->read) || overflowReads_.contains(block_addr);
}

bool
HtmController::writesBlock(Addr block_addr) const
{
    const TxBufferEntry *e = buffer_.find(block_addr);
    return e && e->written;
}

bool
HtmController::conflictsWith(Addr block_addr, AccessType type) const
{
    if (!inTx_ || abortPending_)
        return false;
    if (type == AccessType::Write)
        return readsBlock(block_addr) || writesBlock(block_addr);
    return writesBlock(block_addr);
}

void
HtmController::triggerAbort(AbortReason r, Addr offending_addr,
                            bool addr_valid, std::int32_t offender)
{
    if (!inTx_ || abortPending_)
        return;
    abortPending_ = true;
    pendingReason_ = r;
    lastAbortAddr_ = offending_addr;
    lastAbortAddrValid_ = addr_valid;
    lastAbortCtx_ = offender;
    publishInterest(); // a dead TX no longer listens
    // Restore memory values immediately so that the access which killed
    // this TX observes pre-transactional data.
    if (undoHook_)
        undoHook_();
    if (wakeHook_)
        wakeHook_();
}

void
HtmController::clearTxState()
{
    if (dir_) {
        for (const auto &kv : buffer_.entries())
            dir_->txUntrack(kv.first, unsigned(self_));
        overflowReads_.forEach(
            [&](Addr b) { dir_->txUntrack(b, unsigned(self_)); });
        dir_->setSigActive(unsigned(self_), false);
    }
    inTx_ = false;
    abortPending_ = false;
    capacityPending_ = false;
    pendingReason_ = AbortReason::None;
    buffer_.clear();
    overflowReads_.clear();
    signature_.clear();
    safePages_.clear();
    publishInterest();
}

HtmController::State
HtmController::saveState() const
{
    State s;
    s.inTx = inTx_;
    s.abortPending = abortPending_;
    s.capacityPending = capacityPending_;
    s.pendingReason = pendingReason_;
    s.txStart = txStart_;
    s.lastAbortAddr = lastAbortAddr_;
    s.lastAbortAddrValid = lastAbortAddrValid_;
    s.lastAbortCtx = lastAbortCtx_;
    s.capacityPendingBlock = capacityPendingBlock_;
    s.buffer = buffer_;
    s.overflowReads = overflowReads_;
    s.signature = signature_;
    s.safePages = safePages_;
    return s;
}

void
HtmController::loadState(const State &s)
{
    inTx_ = s.inTx;
    abortPending_ = s.abortPending;
    capacityPending_ = s.capacityPending;
    pendingReason_ = s.pendingReason;
    txStart_ = s.txStart;
    lastAbortAddr_ = s.lastAbortAddr;
    lastAbortAddrValid_ = s.lastAbortAddrValid;
    lastAbortCtx_ = s.lastAbortCtx;
    capacityPendingBlock_ = s.capacityPendingBlock;
    buffer_ = s.buffer;
    overflowReads_ = s.overflowReads;
    signature_ = s.signature;
    safePages_ = s.safePages;
    publishInterest();
}

} // namespace htm
} // namespace hintm
