/**
 * @file
 * POWER8-style dedicated transactional tracking buffer: a small
 * fully-associative structure recording the cache blocks belonging to the
 * running transaction's readset and writeset (64 entries in the paper's P8
 * configuration, one 64B block each).
 */

#ifndef HINTM_HTM_TX_BUFFER_HH
#define HINTM_HTM_TX_BUFFER_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace hintm
{
namespace htm
{

/** Per-block tracking record. */
struct TxBufferEntry
{
    bool read = false;
    bool written = false;
};

/**
 * Bitmask result of TxBuffer::track (and HtmController::trackAccess):
 * zero when nothing was recorded, else Tracked plus the direction bits
 * that are newly set for the block. The newly-* bits let observers
 * count distinct tracked blocks per direction without keeping a shadow
 * copy of the footprint.
 */
enum TrackBits : std::uint8_t
{
    TrackFailed = 0,
    Tracked = 1,
    NewlyRead = 2,
    NewlyWritten = 4,
};

/**
 * Fully-associative transactional buffer. Insertion beyond capacity fails
 * (the caller converts that into a capacity abort or a signature spill).
 */
class TxBuffer
{
  public:
    explicit TxBuffer(unsigned capacity) : capacity_(capacity) {}

    /**
     * Track an access to @p block_addr.
     * @return TrackFailed (zero) when a new entry was needed but the
     * buffer is full (the access is NOT recorded in that case), else
     * Tracked | the newly-set direction bit, if any.
     */
    std::uint8_t track(Addr block_addr, AccessType type);

    /** @return the entry, or nullptr when untracked. */
    const TxBufferEntry *find(Addr block_addr) const;

    /** Drop one entry (P8S read-to-signature displacement). */
    void erase(Addr block_addr) { entries_.erase(block_addr); }

    /**
     * A read-only entry suitable for displacement into a signature, or
     * ~0 when every entry has been written.
     */
    Addr findReadOnlyVictim() const;

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    void clear() { entries_.clear(); }

    const std::unordered_map<Addr, TxBufferEntry> &entries() const
    {
        return entries_;
    }

  private:
    unsigned capacity_;
    std::unordered_map<Addr, TxBufferEntry> entries_;
};

} // namespace htm
} // namespace hintm

#endif // HINTM_HTM_TX_BUFFER_HH
