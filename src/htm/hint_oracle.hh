/**
 * @file
 * Dynamic safety-hint oracle: an opt-in, observation-only shadow tracker
 * that cross-validates the static classifier at run time. The sim layer
 * stamps each memory access with its TxIR source position just before it
 * enters the memory hierarchy; the oracle (installed as the
 * MemorySystem's AccessObserver) shadow-tracks every access at cache-
 * block granularity and flags any statically-safe-hinted transactional
 * access whose data is also written by another thread in the same
 * parallel region, naming the offending TxIR instruction.
 *
 * Soundness of the flag, not of the hint, is the design constraint:
 *
 *  - *Word refinement.* Shadow state is kept per 8-byte word inside each
 *    block entry. Tolerating block-level false sharing without word
 *    overlap is HinTM's legitimate benefit, not a bug — only true word
 *    overlap between a safe access and a remote write is a violation.
 *  - *Synchronization boundaries.* Barriers order everything, so the
 *    shadow map is cleared when one releases (onBarrier). Heap frees
 *    order reuse through the allocator, so a freed range's shadow words
 *    are cleared too (onFree) — otherwise an address recycled from a
 *    shared object into a thread-private one would report a stale race.
 *  - *Unstamped accesses* are runtime traffic (the fallback lock); they
 *    are tracked as writers with no TxIR position.
 *
 * The oracle never touches caches, timing or statistics: a run with it
 * enabled is bit-identical to one without (asserted by tests).
 */

#ifndef HINTM_HTM_HINT_ORACLE_HH
#define HINTM_HTM_HINT_ORACLE_HH

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/mem_system.hh"
#include "tir/ir.hh"

namespace hintm
{
namespace htm
{

/** Shadow-tracking conflict oracle for static safety hints. */
class HintOracle : public mem::AccessObserver
{
  public:
    /** TxIR source position; fn == -1 marks runtime (unstamped) traffic. */
    struct Src
    {
        std::int32_t fn = -1;
        std::int32_t block = 0;
        std::int32_t instr = 0;
    };

    /** One flagged safe access (deduplicated per safe instruction). */
    struct Witness
    {
        Src safeSrc;           ///< the safe-hinted Load/Store
        AccessType type;       ///< access type of the safe access
        Addr addr = 0;         ///< address of the safe access
        unsigned safeCtx = 0;  ///< context that performed it
        Src writerSrc;         ///< the offending remote write
        unsigned writerCtx = 0;
        /** True when the remote write was observed before the safe
         * access (the safe access read possibly-racing data); false
         * when the write arrived after (the safe access escaped the
         * writer's conflict detection). */
        bool writerFirst = false;
    };

    /**
     * Provenance stamp for the next observed access of @p ctx. The sim
     * layer calls this immediately before the one MemorySystem::access
     * the stamp describes (squashed accesses are never stamped);
     * onAccess consumes and clears it. @p check_safe marks a
     * statically-safe-hinted access inside a hardware TX — the accesses
     * the oracle validates.
     */
    void
    stamp(unsigned ctx, std::int32_t fn, std::int32_t block,
          std::int32_t instr, bool check_safe)
    {
        stampCtx_ = int(ctx);
        stampSrc_ = Src{fn, block, instr};
        stampCheckSafe_ = check_safe;
    }

    // mem::AccessObserver: one access entering the hierarchy.
    void onAccess(mem::ContextId ctx, Addr addr, AccessType type) override;

    /** HtmController-side count of accesses that skipped tracking. */
    void onSafeSkip() { ++safeSkips_; }

    /** A barrier released: everything before it is ordered. */
    void onBarrier() { shadow_.clear(); }

    /** [p, p+bytes) was freed: reuse is ordered by the allocator. */
    void onFree(Addr p, std::uint64_t bytes);

    const std::vector<Witness> &witnesses() const { return witnesses_; }
    std::uint64_t safeAccessesChecked() const { return safeChecked_; }
    std::uint64_t safeSkips() const { return safeSkips_; }

    /** Render a witness against the module it was observed on. */
    static std::string describe(const Witness &w, const tir::Module &mod);

  private:
    /** Access width the interpreter performs (64-bit words). */
    static constexpr Addr accessBytes = 8;
    static constexpr std::size_t wordsPerBlock =
        std::size_t(blockBytes / accessBytes);

    struct WriteRec
    {
        unsigned ctx;
        Src src;
    };

    struct SafeRec
    {
        unsigned ctx;
        Src src;
        AccessType type;
        Addr addr;
    };

    /** Per-word shadow: first write / first safe access per context. */
    struct WordShadow
    {
        std::vector<WriteRec> writers;
        std::vector<SafeRec> safeAccs;
    };

    struct BlockShadow
    {
        std::array<WordShadow, wordsPerBlock> words;
    };

    WordShadow &wordAt(Addr word_addr);
    void recordWrite(unsigned ctx, Addr word_addr, const Src &src);
    void checkSafe(unsigned ctx, Addr word_addr, Addr addr,
                   AccessType type, const Src &src);
    void emit(const Witness &w);

    std::unordered_map<Addr, BlockShadow> shadow_;
    std::vector<Witness> witnesses_;
    /** Safe sites already flagged (one witness per instruction). */
    std::set<std::tuple<std::int32_t, std::int32_t, std::int32_t>> seen_;
    std::uint64_t safeChecked_ = 0;
    std::uint64_t safeSkips_ = 0;

    int stampCtx_ = -1;
    Src stampSrc_;
    bool stampCheckSafe_ = false;
};

} // namespace htm
} // namespace hintm

#endif // HINTM_HTM_HINT_ORACLE_HH
