#include "tx_buffer.hh"

namespace hintm
{
namespace htm
{

std::uint8_t
TxBuffer::track(Addr block_addr, AccessType type)
{
    auto it = entries_.find(block_addr);
    if (it == entries_.end()) {
        if (entries_.size() >= capacity_)
            return TrackFailed;
        it = entries_.emplace(block_addr, TxBufferEntry{}).first;
    }
    std::uint8_t r = Tracked;
    if (type == AccessType::Read) {
        if (!it->second.read) {
            it->second.read = true;
            r |= NewlyRead;
        }
    } else if (!it->second.written) {
        it->second.written = true;
        r |= NewlyWritten;
    }
    return r;
}

const TxBufferEntry *
TxBuffer::find(Addr block_addr) const
{
    auto it = entries_.find(block_addr);
    return it == entries_.end() ? nullptr : &it->second;
}

Addr
TxBuffer::findReadOnlyVictim() const
{
    for (const auto &kv : entries_) {
        if (kv.second.read && !kv.second.written)
            return kv.first;
    }
    return ~Addr(0);
}

} // namespace htm
} // namespace hintm
