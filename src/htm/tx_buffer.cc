#include "tx_buffer.hh"

namespace hintm
{
namespace htm
{

bool
TxBuffer::track(Addr block_addr, AccessType type)
{
    auto it = entries_.find(block_addr);
    if (it == entries_.end()) {
        if (entries_.size() >= capacity_)
            return false;
        it = entries_.emplace(block_addr, TxBufferEntry{}).first;
    }
    if (type == AccessType::Read)
        it->second.read = true;
    else
        it->second.written = true;
    return true;
}

const TxBufferEntry *
TxBuffer::find(Addr block_addr) const
{
    auto it = entries_.find(block_addr);
    return it == entries_.end() ? nullptr : &it->second;
}

Addr
TxBuffer::findReadOnlyVictim() const
{
    for (const auto &kv : entries_) {
        if (kv.second.read && !kv.second.written)
            return kv.first;
    }
    return ~Addr(0);
}

} // namespace htm
} // namespace hintm
