/**
 * @file
 * HintOracle implementation — see hint_oracle.hh for the model.
 */

#include "htm/hint_oracle.hh"

#include <algorithm>
#include <sstream>

namespace hintm
{
namespace htm
{

HintOracle::WordShadow &
HintOracle::wordAt(Addr word_addr)
{
    BlockShadow &blk = shadow_[blockAlign(word_addr)];
    return blk.words[std::size_t((word_addr - blockAlign(word_addr)) /
                                 accessBytes)];
}

void
HintOracle::emit(const Witness &w)
{
    const auto key = std::make_tuple(w.safeSrc.fn, w.safeSrc.block,
                                     w.safeSrc.instr);
    if (!seen_.insert(key).second)
        return;
    witnesses_.push_back(w);
}

void
HintOracle::recordWrite(unsigned ctx, Addr word_addr, const Src &src)
{
    WordShadow &ws = wordAt(word_addr);

    // A remote write lands on a word some other context already
    // safe-accessed: that access escaped this writer's conflict
    // detection.
    for (const SafeRec &s : ws.safeAccs) {
        if (s.ctx == ctx)
            continue;
        Witness w;
        w.safeSrc = s.src;
        w.type = s.type;
        w.addr = s.addr;
        w.safeCtx = s.ctx;
        w.writerSrc = src;
        w.writerCtx = ctx;
        w.writerFirst = false;
        emit(w);
    }

    for (const WriteRec &r : ws.writers) {
        if (r.ctx == ctx)
            return; // keep the first write per context
    }
    ws.writers.push_back(WriteRec{ctx, src});
}

void
HintOracle::checkSafe(unsigned ctx, Addr word_addr, Addr addr,
                      AccessType type, const Src &src)
{
    WordShadow &ws = wordAt(word_addr);

    // A safe access lands on a word some other context already wrote:
    // it may observe (or clobber) racing data without any tracking.
    for (const WriteRec &r : ws.writers) {
        if (r.ctx == ctx)
            continue;
        Witness w;
        w.safeSrc = src;
        w.type = type;
        w.addr = addr;
        w.safeCtx = ctx;
        w.writerSrc = r.src;
        w.writerCtx = r.ctx;
        w.writerFirst = true;
        emit(w);
    }

    for (const SafeRec &s : ws.safeAccs) {
        if (s.ctx == ctx)
            return; // keep the first safe access per context
    }
    ws.safeAccs.push_back(SafeRec{ctx, src, type, addr});
}

void
HintOracle::onAccess(mem::ContextId ctx, Addr addr, AccessType type)
{
    // Consume the stamp; accesses without one are runtime traffic.
    Src src;
    bool check_safe = false;
    if (stampCtx_ == int(ctx)) {
        src = stampSrc_;
        check_safe = stampCheckSafe_;
    }
    stampCtx_ = -1;
    stampCheckSafe_ = false;

    if (check_safe)
        ++safeChecked_;

    // The interpreter accesses 64-bit words; an unaligned access
    // touches two shadow words.
    const Addr w0 = addr & ~(accessBytes - 1);
    const Addr w1 = (addr + accessBytes - 1) & ~(accessBytes - 1);
    for (Addr w = w0; w <= w1; w += accessBytes) {
        if (check_safe)
            checkSafe(unsigned(ctx), w, addr, type, src);
        if (type == AccessType::Write)
            recordWrite(unsigned(ctx), w, src);
    }
}

void
HintOracle::onFree(Addr p, std::uint64_t bytes)
{
    if (bytes == 0 || shadow_.empty())
        return;
    const Addr first = p & ~(accessBytes - 1);
    const Addr last = (p + bytes - 1) & ~(accessBytes - 1);
    for (Addr blk = blockAlign(first); blk <= blockAlign(last);
         blk += blockBytes) {
        auto it = shadow_.find(blk);
        if (it == shadow_.end())
            continue;
        const Addr lo = std::max(first, blk);
        const Addr hi = std::min(last, blk + blockBytes - accessBytes);
        for (Addr w = lo; w <= hi; w += accessBytes) {
            WordShadow &ws =
                it->second.words[std::size_t((w - blk) / accessBytes)];
            ws.writers.clear();
            ws.safeAccs.clear();
        }
    }
}

namespace
{

std::string
srcStr(const HintOracle::Src &s, const tir::Module &mod)
{
    if (s.fn < 0)
        return "(runtime)";
    std::ostringstream os;
    os << mod.functions[std::size_t(s.fn)].name << ":" << s.block << ":"
       << s.instr;
    return os.str();
}

} // namespace

std::string
HintOracle::describe(const Witness &w, const tir::Module &mod)
{
    std::ostringstream os;
    os << "HINT-ORACLE safe "
       << (w.type == AccessType::Read ? "load" : "store") << " at "
       << srcStr(w.safeSrc, mod) << " (ctx " << w.safeCtx << ", addr 0x"
       << std::hex << w.addr << std::dec << ") overlaps a write by ctx "
       << w.writerCtx << " at " << srcStr(w.writerSrc, mod)
       << (w.writerFirst ? " (write observed first)"
                         : " (write arrived after the safe access)");
    return os.str();
}

} // namespace htm
} // namespace hintm
