/**
 * @file
 * Transaction abort taxonomy used across the HTM controllers, retry policy
 * and statistics (§II-B / §VI): conflicts, signature false conflicts,
 * capacity overflows, and HinTM's new page-mode aborts.
 */

#ifndef HINTM_HTM_ABORT_HH
#define HINTM_HTM_ABORT_HH

#include <cstdint>

namespace hintm
{
namespace htm
{

/** Why a transaction aborted. */
enum class AbortReason : std::uint8_t
{
    None,          ///< no abort (sentinel)
    Conflict,      ///< true data conflict detected via coherence
    FalseConflict, ///< signature aliasing false positive (P8S only)
    Capacity,      ///< tracking resources exhausted
    PageMode,      ///< a safe page this TX touched turned unsafe (HinTM)
    FallbackLock,  ///< another thread acquired the software fallback lock
};

constexpr unsigned numAbortReasons = 6;

const char *abortReasonName(AbortReason r);

/** Capacity and page-mode aborts are non-transient: retrying in HTM mode
 * cannot succeed (capacity) or is wasteful; everything else may retry.
 * Page-mode aborts ARE retried in HTM mode — the page is unsafe on retry,
 * so tracking resumes and the retry can succeed (§III-B). */
constexpr bool
abortIsTransient(AbortReason r)
{
    return r == AbortReason::Conflict || r == AbortReason::FalseConflict ||
           r == AbortReason::PageMode || r == AbortReason::FallbackLock;
}

} // namespace htm
} // namespace hintm

#endif // HINTM_HTM_ABORT_HH
