#include "hintm.hh"

#include <sstream>

#include "common/logging.hh"
#include "sim/snapshot.hh"

namespace hintm
{
namespace core
{

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::Baseline: return "baseline";
      case Mechanism::StaticOnly: return "HinTM-st";
      case Mechanism::DynamicOnly: return "HinTM-dyn";
      case Mechanism::Full: return "HinTM";
    }
    return "?";
}

namespace
{
bool snoopFilterDefault_ = true;
bool directoryDefault_ = true;
bool decodeCacheDefault_ = true;
bool schedIndexDefault_ = true;
bool journalDefault_ = false;
bool metricsDefault_ = false;
} // namespace

bool
SystemOptions::snoopFilterDefault()
{
    return snoopFilterDefault_;
}

void
SystemOptions::setSnoopFilterDefault(bool on)
{
    snoopFilterDefault_ = on;
}

bool
SystemOptions::directoryDefault()
{
    return directoryDefault_;
}

void
SystemOptions::setDirectoryDefault(bool on)
{
    directoryDefault_ = on;
}

bool
SystemOptions::decodeCacheDefault()
{
    return decodeCacheDefault_;
}

void
SystemOptions::setDecodeCacheDefault(bool on)
{
    decodeCacheDefault_ = on;
}

bool
SystemOptions::schedIndexDefault()
{
    return schedIndexDefault_;
}

void
SystemOptions::setSchedIndexDefault(bool on)
{
    schedIndexDefault_ = on;
}

bool
SystemOptions::journalDefault()
{
    return journalDefault_;
}

void
SystemOptions::setJournalDefault(bool on)
{
    journalDefault_ = on;
}

bool
SystemOptions::metricsDefault()
{
    return metricsDefault_;
}

void
SystemOptions::setMetricsDefault(bool on)
{
    metricsDefault_ = on;
}

std::string
SystemOptions::label() const
{
    std::string s = htm::htmKindName(htmKind);
    s += "/";
    s += mechanismName(mechanism);
    if (preserveReadOnly)
        s += "+preserve";
    return s;
}

sim::MachineConfig
makeMachineConfig(const SystemOptions &opts)
{
    sim::MachineConfig cfg;
    cfg.numCores = opts.numCores;
    cfg.smtPerCore = opts.smtPerCore;
    cfg.seed = opts.seed;

    cfg.htm.kind = opts.htmKind;
    cfg.htm.bufferEntries = opts.bufferEntries;
    cfg.htm.signatureBits = opts.signatureBits;
    cfg.htm.preAbortHandler = opts.preAbortHandler;
    cfg.htm.conflictPolicy = opts.conflictPolicy;
    cfg.maxRetries = opts.maxRetries;

    const bool dyn = opts.mechanism == Mechanism::DynamicOnly ||
                     opts.mechanism == Mechanism::Full;
    cfg.staticHints = opts.mechanism == Mechanism::StaticOnly ||
                      opts.mechanism == Mechanism::Full;
    cfg.dynamicHints = dyn;
    cfg.annotationHints = opts.notaryAnnotations;
    cfg.vm.dynamicClassification = dyn;
    cfg.vm.preserveReadOnly = opts.preserveReadOnly;

    cfg.collectTxSizes = opts.collectTxSizes;
    cfg.profileSharing = opts.profileSharing;
    cfg.validateSafeStores = opts.validateSafeStores;
    cfg.collectRawStats = opts.collectRawStats;
    cfg.hintOracle = opts.hintOracle;
    cfg.journal = opts.journal;
    cfg.journalCapacity = opts.journalCapacity;
    cfg.metrics = opts.metrics;

    // snoopFilter remains the master fast-path switch: turning it off
    // disables both the directory and the translation cache (full
    // reference path); --no-directory flips only the coherence mode.
    cfg.mem.directory = opts.snoopFilter && opts.directory;
    cfg.vm.translationCache = opts.snoopFilter;
    cfg.mem.numaNodes = opts.numaNodes;
    cfg.mem.numaRemoteLatency = opts.numaRemoteLatency;
    cfg.decodeCache = opts.decodeCache;
    cfg.schedIndex = opts.schedIndex;
    return cfg;
}

compiler::SafetyReport
compileHints(tir::Module &mod)
{
    return compiler::annotateSafety(mod);
}

sim::RunResult
simulate(const SystemOptions &opts, const tir::Module &mod,
         unsigned threads)
{
    return sim::runMachine(makeMachineConfig(opts), mod, threads);
}

std::shared_ptr<const sim::MachinePrefix>
buildPrefix(const SystemOptions &opts, const tir::Module &mod,
            unsigned threads)
{
    // The prefix is deliberately built from a sanitized config:
    // observation features play no part in the init phase, and leaving
    // them off keeps one prefix valid for every fork in a sweep.
    SystemOptions base = opts;
    base.journal = false;
    base.metrics = false;
    base.hintOracle = false;
    base.collectRawStats = false;
    return std::make_shared<sim::MachinePrefix>(
        sim::buildMachinePrefix(makeMachineConfig(base), mod, threads));
}

sim::RunResult
simulate(const SystemOptions &opts, const tir::Module &mod,
         unsigned threads, const sim::MachinePrefix *prefix)
{
    return sim::runMachine(makeMachineConfig(opts), mod, threads, prefix);
}

std::string
describeConfig(const sim::MachineConfig &cfg)
{
    std::ostringstream os;
    os << "CPU       : " << cfg.numCores << " cores x " << cfg.smtPerCore
       << " SMT contexts, " << cfg.nonMemCyclesX100 / 100.0
       << " cycles/non-mem instr\n";
    os << "L1d       : " << cfg.mem.l1SizeBytes / 1024 << "KB "
       << cfg.mem.l1Assoc << "-way, 64B blocks, " << cfg.mem.l1Latency
       << "-cycle latency\n";
    os << "L2        : " << cfg.mem.l2SizeBytes / (1024 * 1024) << "MB "
       << cfg.mem.l2Assoc << "-way shared, " << cfg.mem.l2Latency
       << "-cycle latency\n";
    os << "Memory    : " << cfg.mem.memLatency << "-cycle latency\n";
    os << "Coherence : "
       << (cfg.mem.directory ? "directory MESI (owning sharer/owner state)"
                             : "snoopy MESI (broadcast)");
    if (cfg.mem.numaNodes > 1) {
        os << ", " << cfg.mem.numaNodes << " NUMA nodes (+"
           << cfg.mem.numaRemoteLatency << "-cycle remote home)";
    }
    os << "\n";
    os << "HTM       : " << htm::htmKindName(cfg.htm.kind) << ", "
       << cfg.htm.bufferEntries << "-entry TX buffer";
    if (cfg.htm.kind == htm::HtmKind::P8S)
        os << ", " << cfg.htm.signatureBits << "-bit read signature";
    os << "\n";
    os << "HinTM     : static hints "
       << (cfg.staticHints ? "on" : "off") << ", dynamic hints "
       << (cfg.dynamicHints ? "on" : "off");
    if (cfg.vm.preserveReadOnly)
        os << " (+preserve-ro)";
    os << "\n";
    os << "VM        : " << cfg.vm.tlbEntries << "-entry TLB, "
       << cfg.vm.shootdownInitiatorCycles << "/"
       << cfg.vm.shootdownSlaveCycles << "-cycle shootdown, "
       << cfg.vm.minorFaultCycles << "-cycle minor fault\n";
    return os.str();
}

} // namespace core
} // namespace hintm
