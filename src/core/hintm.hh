/**
 * @file
 * HinTM's public API: named system configurations combining a baseline
 * HTM (P8 / P8S / L1TM / InfCap) with HinTM's classification mechanisms
 * (none / static / dynamic / both), a one-call compile-and-run entry
 * point, and result helpers used by the benchmark harnesses.
 */

#ifndef HINTM_CORE_HINTM_HH
#define HINTM_CORE_HINTM_HH

#include <memory>
#include <string>

#include "compiler/safety.hh"
#include "sim/machine.hh"
#include "tir/ir.hh"

namespace hintm
{
namespace sim
{
struct MachinePrefix; // sim/snapshot.hh
}

namespace core
{

/** Which HinTM classification mechanisms are active. */
enum class Mechanism : std::uint8_t
{
    Baseline,    ///< conventional HTM, no hints
    StaticOnly,  ///< HinTM-st: compiler hints only
    DynamicOnly, ///< HinTM-dyn: page-classification hints only
    Full,        ///< HinTM: both mechanisms
};

const char *mechanismName(Mechanism m);

/** High-level system description, expanded into a sim::MachineConfig. */
struct SystemOptions
{
    htm::HtmKind htmKind = htm::HtmKind::P8;
    Mechanism mechanism = Mechanism::Baseline;
    /** The "HinTM + preserve" page policy from §VI-B. */
    bool preserveReadOnly = false;
    /** Honor Notary-style Annotate instructions even when the dynamic
     * mechanism is off (they are always honored when it is on). */
    bool notaryAnnotations = false;
    /** Pre-abort handler [51]: convert capacity-overflowing TXs into
     * critical sections instead of aborting them. */
    bool preAbortHandler = false;
    /** Conflict-loser selection (paper models attacker-wins). */
    htm::ConflictPolicy conflictPolicy =
        htm::ConflictPolicy::AttackerWins;

    unsigned numCores = 8;
    unsigned smtPerCore = 1;
    std::uint64_t seed = 1;

    bool collectTxSizes = false;
    bool profileSharing = false;
    bool validateSafeStores = false;

    /** Ablation knobs (paper defaults otherwise). */
    unsigned bufferEntries = 64;
    unsigned signatureBits = 1024;
    unsigned maxRetries = 8;

    /** Simulator fast path (coherence directory + interest gating +
     * translation cache). Behavior-preserving; off = reference broadcast
     * path for cross-checking. Initialized from snoopFilterDefault(). */
    bool snoopFilter = snoopFilterDefault();
    /** Owning coherence directory: authoritative sharer/owner state,
     * O(sharers) bus probes, tracker-filtered listener delivery.
     * Behavior-preserving; off = reference broadcast coherence
     * (--no-directory cross-check). Ineffective when snoopFilter is
     * off. Initialized from directoryDefault(). */
    bool directory = directoryDefault();
    /** Two-tier NUMA latency model: number of directory home nodes
     * (1 = flat machine, the paper's configuration). */
    unsigned numaNodes = 1;
    /** Extra cycles charged to a remote-home bus transaction. */
    Cycle numaRemoteLatency = 24;
    /** Interpreter fast path (pre-decoded fused op stream + flat frame
     * arena). Behavior-preserving; off = reference Instr-walking
     * interpreter for cross-checking. From decodeCacheDefault(). */
    bool decodeCache = decodeCacheDefault();
    /** Scheduler fast path (event-driven ready-context index with
     * batched stepping). Behavior-preserving; off = reference
     * O(contexts) rotating scan for cross-checking (--no-sched-index).
     * Initialized from schedIndexDefault(). */
    bool schedIndex = schedIndexDefault();
    /** Populate RunResult::rawStats (costs time; off unless asked). */
    bool collectRawStats = false;
    /** Dynamic hint-soundness oracle: shadow-track safe-hinted accesses
     * and report remote-write overlaps (RunResult::oracleWitnesses).
     * Observation only — simulation results are bit-identical. */
    bool hintOracle = false;
    /** Per-TX event journal (RunResult::journal): site-attributed
     * outcome records, abort attribution, interval sampling, Perfetto
     * export. Observation only — simulation results are bit-identical.
     * Initialized from journalDefault() (--journal). */
    bool journal = journalDefault();
    /** TX-journal ring capacity in records (bounded memory). */
    std::size_t journalCapacity = 1u << 16;
    /** Capacity-pressure metrics registry (RunResult::metrics):
     * read/write-set growth curves, overflowing-set occupancy at
     * capacity aborts, per-site hint-effectiveness accounting,
     * fallback-lock timeline, sharer histogram, NUMA traffic matrix.
     * Observation only — simulation results are bit-identical.
     * Initialized from metricsDefault() (--metrics). */
    bool metrics = metricsDefault();

    std::string label() const;

    /** Process-wide default for SystemOptions::snoopFilter, so drivers
     * can flip every subsequently-built config (--no-snoop-filter). */
    static bool snoopFilterDefault();
    static void setSnoopFilterDefault(bool on);

    /** Same for SystemOptions::directory (--no-directory). */
    static bool directoryDefault();
    static void setDirectoryDefault(bool on);

    /** Same for SystemOptions::decodeCache (--no-decode-cache). */
    static bool decodeCacheDefault();
    static void setDecodeCacheDefault(bool on);

    /** Same for SystemOptions::schedIndex (--no-sched-index). */
    static bool schedIndexDefault();
    static void setSchedIndexDefault(bool on);

    /** Same for SystemOptions::journal (--journal). */
    static bool journalDefault();
    static void setJournalDefault(bool on);

    /** Same for SystemOptions::metrics (--metrics). */
    static bool metricsDefault();
    static void setMetricsDefault(bool on);
};

/** Expand high-level options into the full machine configuration. */
sim::MachineConfig makeMachineConfig(const SystemOptions &opts);

/**
 * Run HinTM's static compiler passes over @p mod (in place).
 * Safe to call regardless of the mechanism later simulated: baseline
 * configurations simply ignore the hints.
 */
compiler::SafetyReport compileHints(tir::Module &mod);

/**
 * Simulate an annotated module under @p opts with @p threads workers.
 */
sim::RunResult simulate(const SystemOptions &opts, const tir::Module &mod,
                        unsigned threads);

/**
 * Run @p mod's init phase once and capture it as a fork point. The
 * returned prefix seeds simulate() calls for any options sharing this
 * module, thread count, seed and validateSafeStores setting — backend,
 * mechanism and observation options may differ per fork.
 */
std::shared_ptr<const sim::MachinePrefix>
buildPrefix(const SystemOptions &opts, const tir::Module &mod,
            unsigned threads);

/** simulate(), skipping the init phase via a captured prefix (null
 * falls back to a cold start). */
sim::RunResult simulate(const SystemOptions &opts, const tir::Module &mod,
                        unsigned threads,
                        const sim::MachinePrefix *prefix);

/** Multi-line description of the configuration (Table II dump). */
std::string describeConfig(const sim::MachineConfig &cfg);

} // namespace core
} // namespace hintm

#endif // HINTM_CORE_HINTM_HH
