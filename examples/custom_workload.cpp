/**
 * @file
 * Building a custom workload end-to-end: a producer/consumer pipeline
 * over a shared ring buffer, authored with the TxIR builder, inspected
 * through the IR printer before and after the safety passes, and swept
 * across all four baseline HTMs. A template for adding new workloads to
 * the suite.
 */

#include <cstdio>
#include <iostream>

#include "core/hintm.hh"
#include "tir/builder.hh"
#include "tir/verifier.hh"

using namespace hintm;
using tir::FunctionBuilder;
using tir::Reg;

namespace
{

constexpr std::int64_t ringSlots = 64;
constexpr std::int64_t itemsPerProducer = 120;
constexpr std::int64_t payloadWords = 768; // 96 blocks per item

tir::Module
buildPipeline()
{
    tir::Module m;
    m.globals.push_back({"ring", ringSlots * 8, 0});
    m.globals.push_back({"head", 8, 0});
    m.globals.push_back({"tail", 8, 0});
    m.globals.push_back({"published", 8, 0});
    m.globals.push_back({"consumed", 8 * 64, 0});

    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg ring = f.globalAddr("ring");
    // Even threads produce, odd threads consume.
    const Reg is_producer = f.cmpEqI(f.modI(tid, 2), 0);

    // Each worker keeps a private staging area (freed at thread end:
    // Algorithm 1 classifies it, so staging accesses carry hints).
    const Reg staging = f.mallocI(payloadWords * 8);

    const Reg processed = f.freshVar();
    f.setI(processed, 0);
    f.whileLoop([&] { return f.cmpLtI(processed, itemsPerProducer); },
                [&] {
        f.ifThenElse(
            is_producer,
            [&] {
                // Reserve a slot in a tiny TX (the only contended
                // step), then stage + publish in a big TX that touches
                // nothing shared but the reserved slot.
                const Reg hv = f.freshVar();
                const Reg reserved = f.freshVar();
                f.txBegin();
                const Reg h = f.globalAddr("head");
                f.set(hv, f.load(h));
                f.set(reserved,
                      f.cmpLtI(f.sub(hv,
                                     f.load(f.globalAddr("tail"))),
                               ringSlots));
                f.ifThen(reserved, [&] { f.store(h, f.addI(hv, 1)); });
                f.txEnd();
                f.ifThen(reserved, [&] {
                    f.txBegin();
                    const Reg digest = f.freshVar();
                    f.setI(digest, 0);
                    f.forRangeI(0, payloadWords, [&](Reg i) {
                        f.store(f.gep(staging, i, 8),
                                f.addI(f.add(i, processed), 1));
                        f.set(digest,
                              f.add(digest,
                                    f.load(f.gep(staging, i, 8))));
                    });
                    f.store(f.gep(ring, f.modI(hv, ringSlots), 8),
                            digest);
                    f.txEnd();
                    // Announce the item (tiny TX) so consumers only
                    // claim slots that are already filled.
                    f.txBegin();
                    const Reg pub = f.globalAddr("published");
                    f.store(pub, f.addI(f.load(pub), 1));
                    f.txEnd();
                    f.set(processed, f.addI(processed, 1));
                });
            },
            [&] {
                // Claim the next item, then poll its slot until the
                // producer's publishing TX lands.
                const Reg tv = f.freshVar();
                const Reg claimed = f.freshVar();
                f.txBegin();
                const Reg t = f.globalAddr("tail");
                f.set(tv, f.load(t));
                f.set(claimed,
                      f.cmpLt(tv, f.load(f.globalAddr("published"))));
                f.ifThen(claimed, [&] { f.store(t, f.addI(tv, 1)); });
                f.txEnd();
                f.ifThen(claimed, [&] {
                    const Reg got = f.freshVar();
                    f.setI(got, 0);
                    f.whileLoop([&] { return f.cmpEqI(got, 0); }, [&] {
                        f.txBegin();
                        const Reg slot =
                            f.gep(ring, f.modI(tv, ringSlots), 8);
                        f.set(got, f.load(slot));
                        f.ifThen(f.cmpNeI(got, 0), [&] {
                            f.store(slot, f.constI(0));
                        });
                        f.txEnd();
                    });
                    f.set(processed, f.addI(processed, 1));
                });
            });
    });
    f.store(f.gep(f.globalAddr("consumed"), tid, 64), processed);
    f.freePtr(staging);
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

} // namespace

int
main()
{
    tir::Module m = buildPipeline();
    if (const auto err = tir::verify(m)) {
        std::printf("verifier rejected module: %s\n", err->c_str());
        return 1;
    }

    const auto report = core::compileHints(m);
    std::printf("safety pass: %s\n\n", report.summary().c_str());

    std::printf("%-10s %-10s %10s %9s %9s %10s\n", "HTM", "mech",
                "cycles", "capacity", "conflict", "fallbacks");
    for (const htm::HtmKind kind :
         {htm::HtmKind::P8, htm::HtmKind::P8S, htm::HtmKind::L1TM,
          htm::HtmKind::InfCap}) {
        for (const core::Mechanism mech :
             {core::Mechanism::Baseline, core::Mechanism::Full}) {
            core::SystemOptions opts;
            opts.htmKind = kind;
            opts.mechanism = mech;
            opts.validateSafeStores = true;
            const sim::RunResult r = core::simulate(opts, m, 8);
            std::printf("%-10s %-10s %10llu %9llu %9llu %10llu\n",
                        htm::htmKindName(kind),
                        core::mechanismName(mech),
                        (unsigned long long)r.cycles,
                        (unsigned long long)r.htm.aborts[unsigned(
                            htm::AbortReason::Capacity)],
                        (unsigned long long)r.htm.aborts[unsigned(
                            htm::AbortReason::Conflict)],
                        (unsigned long long)r.fallbackRuns);
        }
    }
    return 0;
}
