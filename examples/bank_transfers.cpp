/**
 * @file
 * Bank-transfer example: the canonical TM correctness demo. 8 threads
 * move money between 256 accounts inside transactions; whatever the mix
 * of commits, conflict aborts and fallback executions, the total balance
 * is conserved. Also demonstrates auditing TXs (read-heavy scans) whose
 * footprint exceeds the P8 capacity until HinTM's dynamic mechanism
 * classifies the per-thread audit journal safe.
 */

#include <cstdio>

#include "core/hintm.hh"
#include "tir/builder.hh"

using namespace hintm;
using tir::FunctionBuilder;
using tir::Reg;

namespace
{

constexpr std::int64_t numAccounts = 256;
constexpr std::int64_t initialBalance = 1000;
constexpr std::int64_t transfersPerThread = 300;
constexpr std::int64_t journalWords = 4096;

tir::Module
buildBank()
{
    tir::Module m;
    m.globals.push_back({"accounts", numAccounts * 8, 0});
    m.globals.push_back({"journals", 8 * 8, 0});
    m.globals.push_back({"audits", 8 * 64, 0});

    {
        FunctionBuilder f(m, "init", 0);
        const Reg acc = f.globalAddr("accounts");
        f.forRangeI(0, numAccounts, [&](Reg i) {
            f.storeI(f.gep(acc, i, 8), initialBalance);
        });
        f.retVoid();
        m.initFunc = f.finish();
    }

    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg acc = f.globalAddr("accounts");
    // Per-thread audit journal, published to a registry: invisible to
    // the static pass, thread-private to the dynamic one.
    const Reg journal = f.mallocI(journalWords * 8);
    f.store(f.gep(f.globalAddr("journals"), tid, 8), journal);
    f.forRangeI(0, journalWords, [&](Reg i) {
        f.store(f.gep(journal, i, 8), f.randI(1 << 10));
    });

    const Reg audited = f.freshVar();
    f.setI(audited, 0);
    f.forRangeI(0, transfersPerThread, [&](Reg n) {
        const Reg from = f.randI(numAccounts);
        const Reg to = f.randI(numAccounts);
        const Reg amount = f.addI(f.randI(50), 1);
        // Transfer TX: tiny footprint, occasional conflicts.
        f.txBegin();
        const Reg fslot = f.gep(acc, from, 8);
        const Reg tslot = f.gep(acc, to, 8);
        f.store(fslot, f.sub(f.load(fslot), amount));
        f.store(tslot, f.add(f.load(tslot), amount));
        f.txEnd();

        // Every 16th operation: audit TX with a large private readset.
        f.ifThen(f.cmpEqI(f.modI(n, 16), 0), [&] {
            f.txBegin();
            const Reg sum = f.freshVar();
            f.setI(sum, 0);
            f.forRangeI(0, 100, [&](Reg) {
                const Reg idx = f.randI(journalWords);
                f.set(sum, f.add(sum, f.load(f.gep(journal, idx, 8))));
            });
            const Reg probe = f.load(f.gep(acc, f.modI(sum, numAccounts),
                                           8));
            f.set(audited, f.add(audited, probe));
            f.txEnd();
        });
    });
    f.store(f.gep(f.globalAddr("audits"), tid, 64), audited);
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

} // namespace

int
main()
{
    tir::Module m = buildBank();
    core::compileHints(m);

    std::printf("%-12s %10s %8s %9s %9s %10s %s\n", "config", "cycles",
                "commits", "conflicts", "capacity", "fallbacks",
                "balance");
    for (const core::Mechanism mech :
         {core::Mechanism::Baseline, core::Mechanism::DynamicOnly,
          core::Mechanism::Full}) {
        core::SystemOptions opts;
        opts.htmKind = htm::HtmKind::P8;
        opts.mechanism = mech;
        opts.validateSafeStores = true;
        const sim::RunResult r = core::simulate(opts, m, 8);

        // Balance conservation: whatever the abort history, the money
        // supply is unchanged.
        long long total = 0;
        for (const auto v : r.finalGlobals.at("accounts"))
            total += v;
        std::printf("%-12s %10llu %8llu %9llu %9llu %10llu %s\n",
                    core::mechanismName(mech),
                    (unsigned long long)r.cycles,
                    (unsigned long long)r.htm.commits,
                    (unsigned long long)r.htm.aborts[unsigned(
                        htm::AbortReason::Conflict)],
                    (unsigned long long)r.htm.aborts[unsigned(
                        htm::AbortReason::Capacity)],
                    (unsigned long long)r.fallbackRuns,
                    total == numAccounts * initialBalance
                        ? "conserved"
                        : "VIOLATED");
    }
    return 0;
}
