/**
 * @file
 * OLTP example built on the TPC-C payment kernel: shows the mixed
 * conflict/capacity abort profile of a transaction processing workload,
 * how rare last-name scans blow past the HTM's tracking capacity, and
 * how HinTM's read-only-index classification removes exactly that tail
 * while the hot-row conflicts remain. Also demonstrates the
 * preserve-read-only page policy (§VI-B).
 */

#include <cstdio>

#include "core/hintm.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

void
runOne(const workloads::Workload &wl, core::SystemOptions opts,
       std::uint64_t base_cycles)
{
    const sim::RunResult r = core::simulate(opts, wl.module, wl.threads);
    const std::uint64_t conf =
        r.htm.aborts[unsigned(htm::AbortReason::Conflict)];
    const std::uint64_t cap =
        r.htm.aborts[unsigned(htm::AbortReason::Capacity)];
    const std::uint64_t page =
        r.htm.aborts[unsigned(htm::AbortReason::PageMode)];
    const std::uint64_t total = r.htm.totalAborts();
    std::printf("%-18s %10llu %8llu %9llu (%4.1f%%) %9llu (%4.1f%%) "
                "%6llu   %.2fx\n",
                opts.label().c_str(), (unsigned long long)r.cycles,
                (unsigned long long)r.htm.commits,
                (unsigned long long)conf,
                total ? 100.0 * double(conf) / double(total) : 0.0,
                (unsigned long long)cap,
                total ? 100.0 * double(cap) / double(total) : 0.0,
                (unsigned long long)page,
                base_cycles ? double(base_cycles) / double(r.cycles)
                            : 1.0);
}

} // namespace

int
main()
{
    workloads::Workload wl =
        workloads::buildTpccP(workloads::Scale::Small);
    core::compileHints(wl.module);

    std::printf("%-18s %10s %8s %18s %18s %6s   %s\n", "config", "cycles",
                "commits", "conflict aborts", "capacity aborts",
                "pg-ab", "speedup");

    core::SystemOptions base;
    base.htmKind = htm::HtmKind::P8;
    const sim::RunResult rb = core::simulate(base, wl.module, wl.threads);
    runOne(wl, base, rb.cycles);

    for (const core::Mechanism mech :
         {core::Mechanism::StaticOnly, core::Mechanism::DynamicOnly,
          core::Mechanism::Full}) {
        core::SystemOptions o = base;
        o.mechanism = mech;
        runOne(wl, o, rb.cycles);
    }
    core::SystemOptions pres = base;
    pres.mechanism = core::Mechanism::Full;
    pres.preserveReadOnly = true;
    runOne(wl, pres, rb.cycles);

    std::printf("\npayment's aborts stay conflict-dominated (hot "
                "warehouse rows); HinTM removes only the scan-induced "
                "capacity tail.\n");
    return 0;
}
