/**
 * @file
 * Maze-routing example — the paper's flagship workload, driven through
 * the public API. Shows how a grid-copy-then-route transaction overflows
 * a conventional HTM, how the static pass discovers the thread-private
 * grids (Algorithm 1 + initializing stores), and how each configuration
 * changes the abort profile. Prints the routed-path count per config to
 * demonstrate identical architectural results.
 */

#include <cstdio>

#include "core/hintm.hh"
#include "workloads/workloads.hh"

using namespace hintm;

int
main()
{
    workloads::Workload wl =
        workloads::buildLabyrinth(workloads::Scale::Small);
    const auto report = core::compileHints(wl.module);
    std::printf("static analysis: %s\n\n", report.summary().c_str());

    std::printf("%-14s %10s %9s %9s %10s %7s\n", "config", "cycles",
                "capacity", "conflict", "fallbacks", "routed");

    std::uint64_t base_cycles = 0;
    for (const auto &[kind, mech] :
         std::initializer_list<std::pair<htm::HtmKind, core::Mechanism>>{
             {htm::HtmKind::P8, core::Mechanism::Baseline},
             {htm::HtmKind::P8, core::Mechanism::StaticOnly},
             {htm::HtmKind::P8, core::Mechanism::Full},
             {htm::HtmKind::InfCap, core::Mechanism::Baseline}}) {
        core::SystemOptions opts;
        opts.htmKind = kind;
        opts.mechanism = mech;
        opts.validateSafeStores = true;
        const sim::RunResult r = core::simulate(opts, wl.module,
                                                wl.threads);
        if (base_cycles == 0)
            base_cycles = r.cycles;

        long long routed = 0;
        for (const auto v : r.finalGlobals.at("g_routed"))
            routed += v;
        std::printf("%-14s %10llu %9llu %9llu %10llu %7lld  (%.2fx)\n",
                    opts.label().c_str(), (unsigned long long)r.cycles,
                    (unsigned long long)r.htm.aborts[unsigned(
                        htm::AbortReason::Capacity)],
                    (unsigned long long)r.htm.aborts[unsigned(
                        htm::AbortReason::Conflict)],
                    (unsigned long long)r.fallbackRuns, routed,
                    double(base_cycles) / double(r.cycles));
    }
    std::printf("\nHinTM-st turns always-overflowing routing TXs into "
                "hardware commits by skipping the private grid copy.\n");
    return 0;
}
