/**
 * @file
 * Quickstart: author a tiny transactional program in TxIR, compile
 * HinTM's safety hints, and simulate it on a POWER8-style HTM with and
 * without hints.
 *
 * The program: 8 threads each fill a private scratch buffer inside a
 * transaction, reduce it, and publish the result to a shared array.
 * The private buffer is larger than the HTM's 64-block capacity, so the
 * conventional HTM capacity-aborts every transaction and serializes on
 * the fallback lock — while HinTM's static pass proves the buffer
 * thread-private and the same transactions commit in hardware.
 */

#include <cstdio>

#include "core/hintm.hh"
#include "tir/builder.hh"

using namespace hintm;
using tir::FunctionBuilder;
using tir::Reg;

int
main()
{
    // ---- 1. Author the program ------------------------------------
    tir::Module m;
    m.globals.push_back({"results", 8 * 8, 0});

    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg buf = f.mallocI(1024 * 8); // 128 cache blocks
    f.txBegin();
    f.forRangeI(0, 1024, [&](Reg i) {
        f.store(f.gep(buf, i, 8), f.add(i, tid)); // initializing: safe
    });
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, 1024, [&](Reg i) {
        f.set(acc, f.add(acc, f.load(f.gep(buf, i, 8)))); // private: safe
    });
    f.store(f.gep(f.globalAddr("results"), tid, 8), acc); // shared: unsafe
    f.txEnd();
    f.freePtr(buf);
    f.retVoid();
    m.threadFunc = f.finish();

    // ---- 2. Run the static safety passes ---------------------------
    const auto report = core::compileHints(m);
    std::printf("compiler: %s\n\n", report.summary().c_str());

    // ---- 3. Simulate both configurations ---------------------------
    auto show = [&](core::Mechanism mech) {
        core::SystemOptions opts;
        opts.htmKind = htm::HtmKind::P8;
        opts.mechanism = mech;
        const sim::RunResult r = core::simulate(opts, m, 8);
        std::printf("%-10s cycles %8llu  HTM commits %llu  capacity "
                    "aborts %llu  fallbacks %llu\n",
                    core::mechanismName(mech),
                    (unsigned long long)r.cycles,
                    (unsigned long long)r.htm.commits,
                    (unsigned long long)
                        r.htm.aborts[unsigned(htm::AbortReason::Capacity)],
                    (unsigned long long)r.fallbackRuns);
        return r;
    };
    const auto base = show(core::Mechanism::Baseline);
    const auto full = show(core::Mechanism::Full);

    std::printf("\nspeedup with HinTM: %.2fx\n",
                double(base.cycles) / double(full.cycles));

    // ---- 4. Results are architecturally identical ------------------
    const auto &rb = base.finalGlobals.at("results");
    const auto &rf = full.finalGlobals.at("results");
    for (int t = 0; t < 8; ++t) {
        const long long expect = 523776 + 1024LL * t; // sum(i) + 1024*tid
        if (rb[std::size_t(t)] != expect || rf[std::size_t(t)] != expect) {
            std::printf("MISMATCH for thread %d\n", t);
            return 1;
        }
    }
    std::printf("all thread results correct under both configs\n");
    return 0;
}
